"""Partitioned execution: dataset sharding with halo-exchange ρ and
scatter/gather δ.

Every other index in this package accelerates one monolithic structure; the
execution backend (:mod:`repro.indexes.parallel`) shards *queries* over that
one image, so the ceiling stays a single structure on a single box.
:class:`PartitionedIndex` shards the *dataset*: the point set is split into
``partitions`` contiguous space-filling-curve tiles, one per-partition index
of any exact family is fitted per tile, and the two DPC queries recombine
exactly — following the exact-parallel decompositions of "Faster Parallel
Exact Density Peaks Clustering" (arXiv:2305.11335) and the MPI
matrix-formulation DPC (arXiv:2406.12297).

How exactness survives the cut
------------------------------
*Tiling.*  Points are quantised to uniform cells, cells are ordered along a
Morton curve (``scheme="morton"``) or by row-major raveling
(``scheme="grid"``), and the curve order is packed into ``partitions``
equal-count tiles.  Correctness never depends on the tile shapes — only on
the tiles being a deterministic disjoint cover — so the scheme is purely a
locality/balance knob.

*Halo-exchange ρ.*  Each tile's sub-index is fitted over its **core** points
plus a **halo**: every outside point within ``halo_`` (metric units, same
units as ``dc``) of the core bounding box, measured with the metric's exact
``rect_mindist``.  Since ``rect_mindist(q, box) ≤ dist(q, p)`` for any core
point ``p`` (per-axis gaps are dominated coordinate-wise, and the metric's
monotone reductions preserve that under FP), every point strictly within
``dc ≤ halo_`` of a core point is a member of its tile — so the sub-index's
purely local counts *are* the global counts for core rows.  ρ is then a
scatter of core rows by global id.  The halo grows on demand: a query whose
``dc`` exceeds the current width refits the sub-indexes with the wider strip
(``dc`` larger than a tile means the halo swallows whole neighbours — still
exact, just less local).

*Scatter/gather δ.*  Members are ordered by ascending global id, so each
sub-index's local tie-breaks (both conventions) coincide with the global
ones restricted to its members.  A core point whose local nearest-denser
distance ``δ_loc`` satisfies ``δ_loc ≤ halo_`` is **settled** locally: any
global denser point within ``δ_loc`` would be a member too (same
``rect_mindist`` containment), ties included.  The rest gather: partition
summaries (min density-order key ≡ the tie-aware form of the paper's maxrho
Lemma 1 bound) mean only candidate partitions that can hold a denser object
are probed, partitions whose core box lies strictly beyond the running best
distance are skipped (Lemma 2 across shards), and the probed partitions'
per-tile minima merge under the lexicographic ``(distance, id)`` rule.
Global peaks take one blocked max-distance sweep over all points.  Every
path reduces the same elementwise metric arithmetic the monolithic indexes
use, so (ρ, δ, μ) — and therefore labels — are **bit-identical** to a
single-partition fit for every ``dc``, tie-break and exact family.

Execution
---------
All sub-indexes share the parent's one
:class:`~repro.indexes.parallel.ExecutionBackend`: under
``backend="process"`` each per-partition query runs as supervised tasks
over that partition's own ``ShmPack`` image, with the executor's
retry/degradation ladder intact.  Probe counters from the sub-indexes are
folded into the parent's :class:`~repro.indexes.base.IndexStats`; the
partition-level exchange adds its own (:meth:`PartitionedIndex.partition_stats`).
Counters are *not* bit-identical to a monolithic fit — results are.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder
from repro.geometry.distance import Metric, rect_bounds_many
from repro.indexes.base import DPCIndex, IndexStats
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.indexes.kernels import (
    delta_multi_from_orders,
    gather_min_denser,
    merge_delta_candidates,
)

__all__ = ["PartitionedIndex", "assign_partitions", "PARTITION_SCHEMES"]

#: Recognised tiling curves (a locality knob, never a correctness one).
PARTITION_SCHEMES = ("morton", "grid")


def _interleave_bits(cells: np.ndarray, bits: int) -> np.ndarray:
    """Morton key: interleave ``bits`` bits of every column of ``cells``."""
    n, d = cells.shape
    key = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        for j in range(d):
            key |= ((cells[:, j] >> b) & 1) << (b * d + j)
    return key


def assign_partitions(points: np.ndarray, partitions: int, scheme: str) -> np.ndarray:
    """Deterministic ``(n,)`` tile id per point (0..partitions-1).

    Points quantise to a uniform cell grid, cells order along the chosen
    curve, and the curve order packs into ``partitions`` equal-count
    contiguous tiles (ties inside a cell break by ascending global id).
    Every tile is non-empty whenever ``partitions <= n``.
    """
    if scheme not in PARTITION_SCHEMES:
        raise ValueError(
            f"scheme must be one of {PARTITION_SCHEMES}, got {scheme!r}"
        )
    n, d = points.shape
    if partitions <= 1:
        return np.zeros(n, dtype=np.int64)
    # Enough cells that tiles can follow the curve, few enough that the
    # interleaved key fits comfortably in an int64 for any dimensionality.
    bits = max(1, min(int(np.ceil(np.log2(partitions))) + 3, 62 // d, 16))
    cells_per_axis = 1 << bits
    lo = points.min(axis=0)
    span = points.max(axis=0) - lo
    width = np.where(span > 0, span / cells_per_axis, 1.0)
    cell = np.clip(
        ((points - lo) / width).astype(np.int64), 0, cells_per_axis - 1
    )
    if scheme == "morton":
        key = _interleave_bits(cell, bits)
    else:  # row-major raveling of the cell grid
        key = np.zeros(n, dtype=np.int64)
        for j in range(d):
            key = key * cells_per_axis + cell[:, j]
    ids = np.arange(n)
    curve_order = np.lexsort((ids, key))
    assign = np.empty(n, dtype=np.int64)
    # Equal-count packing: curve position p lands in tile p*partitions//n.
    assign[curve_order] = (ids * partitions) // n
    return assign


class PartitionedIndex(DPCIndex):
    """An exact DPC index over ``partitions`` per-tile sub-indexes.

    Parameters
    ----------
    family:
        Registry name of the per-partition index family (any *exact*
        family: ``list``/``ch``/``kdtree``/``quadtree``/``rtree``/``grid``).
    partitions:
        Number of dataset tiles (clamped at fit time so every tile keeps at
        least two core points).
    halo:
        Initial halo width in metric units (same units as ``dc``; for
        ``sqeuclidean`` that means squared units).  ``None`` starts at 0
        and lets queries grow it on demand — results are independent of
        the resolved width, it only moves work between the local and the
        gather path.
    scheme:
        Tiling curve, ``"morton"`` (default) or ``"grid"``.
    family_params:
        Extra constructor keywords for the family (e.g. ``leaf_size``).
        Execution knobs are rejected here — the parent's backend is shared
        by every sub-index.
    """

    name = "partitioned"
    exact = True

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        family: str = "rtree",
        partitions: int = 4,
        halo: Optional[float] = None,
        scheme: str = "morton",
        family_params: Optional[Dict[str, Any]] = None,
        backend: "str | Any" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(
            metric=metric, backend=backend, n_jobs=n_jobs, chunk_size=chunk_size
        )
        from repro.indexes.registry import INDEX_CLASSES

        if family not in INDEX_CLASSES:
            raise ValueError(
                f"unknown family {family!r}; available: {tuple(sorted(INDEX_CLASSES))}"
            )
        if family == self.name:
            raise ValueError("partitioned indexes do not nest")
        if not INDEX_CLASSES[family].exact:
            raise ValueError(
                f"family {family!r} is approximate; partitioned execution "
                "requires an exact family (its truncated δ sentinels are "
                "ambiguous across tiles)"
            )
        if not self.metric.supports_rect_bounds:
            raise ValueError(
                f"metric {self.metric.name!r} has no exact rectangle bounds; "
                "halo membership needs rect_mindist"
            )
        if int(partitions) < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if halo is not None and float(halo) < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        if scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"scheme must be one of {PARTITION_SCHEMES}, got {scheme!r}"
            )
        family_params = dict(family_params or {})
        for key in ("metric", "backend", "n_jobs", "chunk_size"):
            if key in family_params:
                raise ValueError(
                    f"family_params may not override {key!r}; it is inherited "
                    "from the partitioned index"
                )
        self.family = family
        self.partitions = int(partitions)
        self.halo = None if halo is None else float(halo)
        self.scheme = scheme
        self.family_params = family_params
        self.required_ndim = INDEX_CLASSES[family].required_ndim

        self.partitions_: Optional[int] = None
        self.halo_: Optional[float] = None
        self._assign: Optional[np.ndarray] = None
        self._cores: List[np.ndarray] = []
        self._bbox_lo: Optional[np.ndarray] = None
        self._bbox_hi: Optional[np.ndarray] = None
        self._members: List[np.ndarray] = []
        self._core_rows: List[np.ndarray] = []
        self._subs: List[DPCIndex] = []
        self._pstats: Dict[str, int] = {}

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        points = self.points
        # Clamp so every tile keeps at least two core points — some families
        # (e.g. list) refuse singleton fits, and a singleton tile carries no
        # locality anyway.
        self.partitions_ = max(1, min(self.partitions, len(points) // 2))
        self._assign = assign_partitions(points, self.partitions_, self.scheme)
        self._cores = [
            np.flatnonzero(self._assign == t) for t in range(self.partitions_)
        ]
        self._bbox_lo = np.stack([points[c].min(axis=0) for c in self._cores])
        self._bbox_hi = np.stack([points[c].max(axis=0) for c in self._cores])
        self.halo_ = float(self.halo) if self.halo is not None else 0.0
        self._pstats = {
            "halo_regrows": 0,
            "local_settled": 0,
            "gathered": 0,
            "gather_probes": 0,
            "partitions_pruned_density": 0,
            "partitions_pruned_distance": 0,
        }
        self._fit_subs()

    def _fit_subs(self) -> None:
        """(Re)fit one sub-index per tile for the current halo width."""
        points = self.points
        mindist_many, _ = rect_bounds_many(self.metric)
        members: List[np.ndarray] = []
        for t in range(self.partitions_):
            near = mindist_many(points, self._bbox_lo[t], self._bbox_hi[t])
            members.append(
                np.flatnonzero((self._assign == t) | (near <= self.halo_))
            )
        self._adopt_members(members)

    def _adopt_members(self, members: List[np.ndarray]) -> None:
        """Fit one sub-index per tile over the given member-id arrays."""
        from repro.indexes.registry import make_index

        for sub in self._subs:
            sub.release_execution()
        points = self.points
        backend = self._execution()
        core_rows: List[np.ndarray] = []
        subs: List[DPCIndex] = []
        for t, mem in enumerate(members):
            core_rows.append(np.flatnonzero(self._assign[mem] == t))
            sub = make_index(
                self.family,
                metric=self.metric,
                backend=backend,
                **self.family_params,
            )
            sub.fit(points[mem])
            subs.append(sub)
        self._members = list(members)
        self._core_rows = core_rows
        self._subs = subs

    def _restore_layout(
        self,
        points: np.ndarray,
        halo: float,
        assign: np.ndarray,
        members: List[np.ndarray],
    ) -> None:
        """Adopt a persisted per-partition layout (persist.py load path).

        The tile assignment, resolved halo width and per-tile member arrays
        come from the payload (integrity-checked there); the sub-indexes
        refit deterministically over their stored members, skipping the
        curve sort and the halo rect pass.
        """
        self._release_shards()
        self._fingerprint_ = None
        self._stats.reset()
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.partitions_ = len(members)
        self._assign = np.ascontiguousarray(assign, dtype=np.int64)
        self._cores = [
            np.flatnonzero(self._assign == t) for t in range(self.partitions_)
        ]
        self._bbox_lo = np.stack([self.points[c].min(axis=0) for c in self._cores])
        self._bbox_hi = np.stack([self.points[c].max(axis=0) for c in self._cores])
        self.halo_ = float(halo)
        self._pstats = {
            "halo_regrows": 0,
            "local_settled": 0,
            "gathered": 0,
            "gather_probes": 0,
            "partitions_pruned_density": 0,
            "partitions_pruned_distance": 0,
        }
        self._adopt_members([np.asarray(m, dtype=np.int64) for m in members])

    def _ensure_halo(self, needed: float) -> None:
        """Grow the halo (and refit the tiles) when a query's dc demands."""
        if needed > self.halo_:
            self.halo_ = float(needed)
            self._pstats["halo_regrows"] += 1
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_partition_halo_regrows_total",
                    "Halo strips regrown (tiles refitted) because a query dc outgrew them",
                ).inc()
            self._fit_subs()

    # -- lifecycle plumbing --------------------------------------------------

    def _release_shards(self) -> None:
        # Cascade: each sub-index owns its own per-tile ShmPack.  The shared
        # ExecutionBackend instance is not theirs, so release never tears
        # down the parent's pool.  (Also called from fit() before _subs
        # exists, hence the getattr.)
        for sub in getattr(self, "_subs", ()):
            sub.release_execution()
        super()._release_shards()

    def _drain_substats(self) -> None:
        """Fold sub-index probe counters into the parent's and reset them."""
        for sub in self._subs:
            stats = sub.stats()
            for f in dataclass_fields(IndexStats):
                setattr(
                    self._stats,
                    f.name,
                    getattr(self._stats, f.name) + getattr(stats, f.name),
                )
            sub.reset_stats()

    # -- ρ: local counts + halo exchange -------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        if dc <= 0:
            raise ValueError(f"dc must be positive, got {dc}")
        return self.rho_all_multi([float(dc)])[0]

    def rho_all_multi(self, dcs) -> np.ndarray:
        points = self._require_fitted()
        dcs = self._validate_dcs(dcs)
        self._ensure_halo(float(dcs.max()))
        out = np.empty((len(dcs), len(points)), dtype=np.int64)
        for t, sub in enumerate(self._subs):
            local = sub.rho_all_multi(dcs)
            out[:, self._cores[t]] = local[:, self._core_rows[t]]
        self._drain_substats()
        return out

    # -- δ: local settle + maxrho scatter/gather ------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        return self.delta_all_multi([order])[0]

    def delta_all_multi(self, orders) -> "list[Tuple[np.ndarray, np.ndarray]]":
        points = self._require_fitted()
        orders = list(orders)

        def run_engine(qid, qord, rho_rows, key_rows):
            return self._partitioned_delta_engine(
                orders, qid, qord, key_rows
            )

        return delta_multi_from_orders(
            points, orders, run_engine, self.metric, self._stats
        )

    def _partitioned_delta_engine(self, orders, qid, qord, key_rows):
        """(δ, μ) for the flattened non-peak queries of every order."""
        points = self.points
        n = len(points)
        n_orders = len(orders)
        # Local pass: every tile answers every order over its members.  The
        # gid-ascending member layout makes the sub-index's id tie-breaks
        # equal to the global ones restricted to the tile.
        loc_delta = np.empty((n_orders, n), dtype=np.float64)
        loc_mu = np.full((n_orders, n), NO_NEIGHBOR, dtype=np.int64)
        with obs_trace.span("partition.local", tiles=len(self._subs)):
            for t, sub in enumerate(self._subs):
                mem = self._members[t]
                rows = self._core_rows[t]
                local_orders = [
                    DensityOrder(order.rho[mem], order.tie_break) for order in orders
                ]
                for o, (d_l, m_l) in enumerate(sub.delta_all_multi(local_orders)):
                    loc_delta[o, self._cores[t]] = d_l[rows]
                    m_core = m_l[rows]
                    has = m_core != NO_NEIGHBOR
                    loc_mu[o, self._cores[t]] = np.where(
                        has, mem[np.where(has, m_core, 0)], NO_NEIGHBOR
                    )
            self._drain_substats()

        halo = self.halo_
        delta_q = np.empty(len(qid), dtype=np.float64)
        mu_q = np.empty(len(qid), dtype=np.int64)
        settled_total = 0
        with obs_trace.span("partition.gather", orders=n_orders) as gather_span:
            for o in range(n_orders):
                sel = np.flatnonzero(qord == o)
                ids = qid[sel]
                d_loc = loc_delta[o, ids]
                m_loc = loc_mu[o, ids]
                # Settled iff the local candidate exists and every global point
                # within δ_loc is provably a member (rect_mindist ≤ d ≤ halo).
                settled = (m_loc != NO_NEIGHBOR) & (d_loc <= halo)
                settled_total += int(settled.sum())
                self._pstats["local_settled"] += int(settled.sum())
                out_d = np.where(settled, d_loc, np.inf)
                out_mu = np.where(settled, m_loc, n)
                open_rows = np.flatnonzero(~settled)
                if len(open_rows):
                    g_d, g_mu = self._gather(ids[open_rows], key_rows[o])
                    out_d[open_rows] = g_d
                    out_mu[open_rows] = g_mu
                if not np.isfinite(out_d).all():  # pragma: no cover - invariant
                    raise RuntimeError(
                        "partitioned gather left a non-peak query unresolved"
                    )
                delta_q[sel] = out_d
                mu_q[sel] = out_mu
            gather_span.set("settled", settled_total)
            gather_span.set("gathered", len(qid) - settled_total)
        if obs_runtime._ENABLED:
            split = obs_metrics.counter(
                "repro_partition_delta_queries_total",
                "Non-peak delta queries by resolution path (settled in-tile vs gathered)",
                ("path",),
            )
            if settled_total:
                split.labels("settled").inc(settled_total)
            if len(qid) - settled_total:
                split.labels("gathered").inc(len(qid) - settled_total)
        return delta_q, mu_q

    def _gather(self, ids: np.ndarray, key: np.ndarray):
        """Exact cross-tile nearest-denser search for the unsettled queries.

        Partition-level Lemma 1: a tile whose minimum density-order key is
        not below the query's cannot hold a denser object (for ``TieBreak.ID``
        this is the tie-aware refinement of "maxrho exceeds ρ(p)"; for
        STRICT it is exactly ``maxrho > ρ(p)``).  Partition-level Lemma 2:
        a tile whose core box lies *strictly* beyond the running best
        distance cannot improve it (equality is kept — a tie there may win
        on a smaller id).
        """
        points = self.points
        n = len(points)
        self._pstats["gathered"] += len(ids)
        record = obs_runtime._ENABLED
        q_points = points[ids]
        q_key = key[ids]
        best_d = np.full(len(ids), np.inf)
        best_mu = np.full(len(ids), n, dtype=np.int64)
        mindist_many, _ = rect_bounds_many(self.metric)
        for t in range(self.partitions_):
            cores = self._cores[t]
            min_key = key[cores].min()
            denser_possible = min_key < q_key
            pruned_density = int((~denser_possible).sum())
            self._pstats["partitions_pruned_density"] += pruned_density
            near = mindist_many(q_points, self._bbox_lo[t], self._bbox_hi[t])
            in_range = near <= best_d
            pruned_distance = int((denser_possible & ~in_range).sum())
            self._pstats["partitions_pruned_distance"] += pruned_distance
            if record:
                pruned = obs_metrics.counter(
                    "repro_partition_pruned_total",
                    "Tile probes skipped by the partition-level lemmas",
                    ("lemma",),
                )
                if pruned_density:
                    pruned.labels("density").inc(pruned_density)
                if pruned_distance:
                    pruned.labels("distance").inc(pruned_distance)
            active = np.flatnonzero(denser_possible & in_range)
            if not len(active):
                continue
            self._pstats["gather_probes"] += 1
            if record:
                obs_metrics.counter(
                    "repro_partition_gather_probes_total",
                    "Cross-tile gather probes actually executed",
                ).inc()
            denser = key[cores][None, :] < q_key[active][:, None]
            d_t, mu_t = gather_min_denser(
                q_points[active],
                points[cores],
                cores,
                denser,
                self.metric,
                self._stats,
                no_candidate_id=n,
            )
            best_d[active], best_mu[active] = merge_delta_candidates(
                best_d[active], best_mu[active], d_t, mu_t
            )
        return best_d, best_mu

    def snapshot_copy(self) -> "DPCIndex":
        clone = super().snapshot_copy()
        # Sub-indexes are shared arrays + per-instance stats/shard state;
        # give the clone its own instances so the original's stat drains and
        # halo regrows never touch what the clone is serving from.
        clone._subs = [sub.snapshot_copy() for sub in self._subs]
        clone._pstats = dict(self._pstats)
        return clone

    # -- bookkeeping ---------------------------------------------------------

    def memory_bytes(self) -> int:
        self._require_fitted()
        layout = self._assign.nbytes + self._bbox_lo.nbytes + self._bbox_hi.nbytes
        layout += sum(m.nbytes for m in self._members)
        layout += sum(r.nbytes for r in self._core_rows)
        layout += sum(c.nbytes for c in self._cores)
        return layout + sum(sub.memory_bytes() for sub in self._subs)

    def partition_stats(self) -> Dict[str, Any]:
        """Partition-level observability: layout + exchange counters."""
        self._require_fitted()
        halo_points = sum(
            len(m) - len(c) for m, c in zip(self._members, self._cores)
        )
        return {
            "partitions": self.partitions_,
            "halo": self.halo_,
            "scheme": self.scheme,
            "family": self.family,
            "core_sizes": [len(c) for c in self._cores],
            "member_sizes": [len(m) for m in self._members],
            "halo_points": halo_points,
            **self._pstats,
        }

    def describe(self) -> Dict[str, Any]:
        info = super().describe()
        info["family"] = self.family
        info["partitions"] = self.partitions_
        info["halo"] = self.halo_
        return info
