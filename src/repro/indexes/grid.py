"""Uniform grid index for DPC (extension; cf. the grid-based related work).

The related-work section of the paper cites grid-based accelerations of DPC
(Wu et al. [22], Xu et al. [24]) that *approximate* densities at grid
granularity.  This index keeps the grid idea but stays **exact**: cells are
just containers over which the same contained / discarded / intersected
classification of Observation 1 runs, and the δ query expands outward ring
by ring with the density pruning of Lemma 1 and the distance pruning of
Lemma 2 applied per cell.  The default ``delta_mode="batched"`` runs the δ
expansion through :func:`repro.indexes.kernels.grid_delta_batched`: all
still-unresolved queries advance one ring outward per Python step, each
ring's candidate cells expanding into one flat ``(query, cell)`` pair array
that is pruned and resolved in single vectorised passes;
``delta_mode="scalar"`` keeps the per-object reference expansion the
batched path is property-tested against.

The ρ query is evaluated cell-batched: query points are grouped by home
cell and every candidate cell is classified for the whole group with the
batched rectangle bounds of :func:`repro.geometry.distance.rect_bounds_many`
— per-point classifications (and therefore results *and* probe counters)
are identical to the scalar formulation, but the Python-level loop shrinks
from ``n`` objects to ``n / occupancy`` occupied cells.

The grid is a flat (non-hierarchical) structure, so it shines when ``dc`` is
small relative to the data extent and degrades towards a full scan for huge
``dc`` — a trade-off the ablation benchmarks make visible.
2-D only, matching the paper's spatial datasets.

``cell_size`` keeps the configured value (``None`` = auto) and the per-fit
resolved edge length lives in ``cell_size_``, so refitting on a different
dataset re-resolves the automatic sizing.
"""

from __future__ import annotations

from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder
from repro.geometry.distance import Metric
from repro.indexes import parallel
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import (
    delta_multi_from_orders,
    grid_delta_batched,
    grid_rho_batched,
    merge_delta_candidates,
    peak_delta_sweep,
)

__all__ = ["GridIndex"]


class GridIndex(DPCIndex):
    """Exact uniform-grid DPC index (2-D).

    Parameters
    ----------
    cell_size:
        Edge length of the square cells; ``None`` picks the size that puts
        ``target_occupancy`` objects in the average occupied cell.  The
        resolved per-fit value is ``cell_size_``.
    target_occupancy:
        Mean objects per cell for the automatic sizing.
    delta_mode:
        ``"batched"`` (default) — cell-batched expanding-ring δ via
        :func:`repro.indexes.kernels.grid_delta_batched`; ``"scalar"`` —
        the per-object reference expansion.  Both produce bit-identical
        (δ, μ).
    """

    name: ClassVar[str] = "grid"
    required_ndim: ClassVar[Optional[int]] = 2

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        cell_size: Optional[float] = None,
        target_occupancy: int = 16,
        delta_mode: str = "batched",
        backend: "str" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(metric, backend=backend, n_jobs=n_jobs, chunk_size=chunk_size)
        if not self.metric.supports_rect_bounds:
            raise ValueError(
                f"metric {self.metric.name!r} has no exact rectangle bounds"
            )
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if target_occupancy < 1:
            raise ValueError(f"target_occupancy must be >= 1, got {target_occupancy}")
        if delta_mode not in ("batched", "scalar"):
            raise ValueError(
                f"delta_mode must be 'batched' or 'scalar', got {delta_mode!r}"
            )
        self.cell_size = cell_size
        self.target_occupancy = target_occupancy
        self.delta_mode = delta_mode
        self.cell_size_: Optional[float] = None  # resolved per fit
        self._lo: Optional[np.ndarray] = None
        self._shape: Tuple[int, int] = (0, 0)
        self._offsets: Optional[np.ndarray] = None  # (ncells+1,) CSR into _ids
        self._ids: Optional[np.ndarray] = None
        self._cell_of: Optional[np.ndarray] = None  # flat cell id per object
        self._cell_maxrho: Optional[np.ndarray] = None
        self._delta_grid: Optional[dict] = None  # LSM-style CSR side image
        self._base_n = 0  # points covered by the base CSR

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        extent = np.maximum(hi - lo, 1e-300)
        if self.cell_size is None:
            # Aim for target_occupancy points per cell on average:
            # ncells ≈ n / occupancy  ⇒  w ≈ sqrt(area · occupancy / n).
            # Degenerate (collinear / near-collinear) data makes the area
            # formula collapse to ~0 and the cell grid explode, so floor the
            # width at the 1-D rule — n/occupancy cells along the longest
            # axis.
            area = float(extent[0] * extent[1])
            span = float(extent.max())
            w_2d = float(np.sqrt(area * self.target_occupancy / n))
            w_1d = span * self.target_occupancy / n
            self.cell_size_ = max(w_2d, w_1d)
            if not np.isfinite(self.cell_size_) or self.cell_size_ <= 0.0:
                self.cell_size_ = 1.0
        else:
            self.cell_size_ = float(self.cell_size)
        w = float(self.cell_size_)
        nx = max(1, int(np.floor(extent[0] / w)) + 1)
        ny = max(1, int(np.floor(extent[1] / w)) + 1)
        cx = np.minimum((points[:, 0] - lo[0]) // w, nx - 1).astype(np.int64)
        cy = np.minimum((points[:, 1] - lo[1]) // w, ny - 1).astype(np.int64)
        flat = cx * ny + cy
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=nx * ny)
        offsets = np.zeros(nx * ny + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._lo = lo
        self._shape = (nx, ny)
        self._offsets = offsets
        self._ids = np.arange(n, dtype=np.int64)[order]
        self._cell_of = flat
        self._delta_grid = None
        self._base_n = n

    # -- LSM-style delta segment ---------------------------------------------------

    #: Side grids larger than this many cells fall back to a full refit
    #: (a scattered delta batch under a tiny base cell width would otherwise
    #: allocate an offsets array dwarfing the data).
    _MAX_DELTA_CELLS = 1 << 22

    def _append(self, new_points: np.ndarray) -> None:
        """Ingest a batch as a rebuilt CSR side image over all delta points.

        The side grid keeps the base cell width (so the ring arithmetic of
        the δ kernel is shared) but gets its *own* bounding box — every
        stored candidate physically lies inside its cell, which the
        pair-query pruning lemmas rely on.  Base arrays are never mutated
        in place; attributes rebind (snapshot copies keep answering for
        their content).
        """
        combined = np.concatenate([self.points, new_points])
        base_n = self._base_n
        delta = combined[base_n:]
        w = float(self.cell_size_)
        lo = delta.min(axis=0)
        extent = np.maximum(delta.max(axis=0) - lo, 1e-300)
        nx = max(1, int(np.floor(extent[0] / w)) + 1)
        ny = max(1, int(np.floor(extent[1] / w)) + 1)
        if nx * ny > max(self._MAX_DELTA_CELLS, 8 * len(combined)):
            super()._append(new_points)
            return
        cx = np.minimum((delta[:, 0] - lo[0]) // w, nx - 1).astype(np.int64)
        cy = np.minimum((delta[:, 1] - lo[1]) // w, ny - 1).astype(np.int64)
        flat = cx * ny + cy
        order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=nx * ny)
        offsets = np.zeros(nx * ny + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.points = combined
        self._delta_grid = {
            "lo": lo,
            "shape": (nx, ny),
            "offsets": offsets,
            "ids": (np.arange(len(delta), dtype=np.int64) + base_n)[order],
            "cell_of": flat,
        }

    @property
    def delta_size(self) -> int:
        if self._delta_grid is None or not self.is_fitted:
            return 0
        return len(self.points) - self._base_n

    def _compact(self) -> None:
        merged = self._merge_csr_append()
        if merged is None:
            self.fit(self.points)
            return
        self._offsets, self._ids, self._cell_of = merged
        self._delta_grid = None
        self._base_n = len(self.points)

    def _merge_csr_append(self):
        """Merged base+delta CSR, or ``None`` when only a refit is valid.

        The merge requires the *same geometry* a fresh fit would resolve:
        an explicitly configured ``cell_size`` (automatic sizing depends on
        ``n``) and an unchanged bounding box / cell grid.  The merged
        layout — each cell's base run followed by its delta ids in id
        order — is then exactly the stable cell sort a fresh ``_build``
        produces.
        """
        if self.cell_size is None:
            return None
        points = self.points
        base_n = self._base_n
        lo = points.min(axis=0)
        if not np.array_equal(lo, self._lo):
            return None
        extent = np.maximum(points.max(axis=0) - lo, 1e-300)
        w = float(self.cell_size_)
        nx = max(1, int(np.floor(extent[0] / w)) + 1)
        ny = max(1, int(np.floor(extent[1] / w)) + 1)
        if (nx, ny) != self._shape:
            return None
        delta = points[base_n:]
        cx = np.minimum((delta[:, 0] - lo[0]) // w, nx - 1).astype(np.int64)
        cy = np.minimum((delta[:, 1] - lo[1]) // w, ny - 1).astype(np.int64)
        flat = cx * ny + cy
        order = np.argsort(flat, kind="stable")
        ids_d = (np.arange(len(delta), dtype=np.int64) + base_n)[order]
        new_ids = np.insert(self._ids, self._offsets[flat[order] + 1], ids_d)
        new_offsets = self._offsets.copy()
        new_offsets[1:] += np.cumsum(np.bincount(flat, minlength=nx * ny))
        new_cell_of = np.concatenate([self._cell_of, flat])
        return new_offsets, new_ids, new_cell_of

    def _clamped_cells(self, lo: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
        """Per-point grouping/home cells of *all* points w.r.t. a grid image.

        Members get their true cell (same floor arithmetic as ``_build``);
        points outside the box clamp per axis.  Clamping only contracts
        per-axis distances to stored candidates — which all lie inside the
        box — so every rect-bounds metric's ring pruning stays sound.
        """
        points = self.points
        w = float(self.cell_size_)
        nx, ny = shape
        cx = np.clip(((points[:, 0] - lo[0]) // w).astype(np.int64), 0, nx - 1)
        cy = np.clip(((points[:, 1] - lo[1]) // w).astype(np.int64), 0, ny - 1)
        return cx * ny + cy

    def occupied_cells(self) -> int:
        self._require_fitted()
        return int((np.diff(self._offsets) > 0).sum())

    def _cell_box(self, ix: int, iy: int) -> Tuple[np.ndarray, np.ndarray]:
        w = self.cell_size_
        lo = self._lo + np.array([ix * w, iy * w])
        return lo, lo + w

    # -- sharded-execution image (repro.indexes.parallel) ----------------------------

    def _shard_arrays(self):
        return {
            "points": self.points,
            "offsets": self._offsets,
            "ids": self._ids,
            "cell_of": self._cell_of,
            "grid_lo": self._lo,
        }

    def _shard_meta(self):
        return {"shape": self._shape, "w": float(self.cell_size_)}

    # -- ρ query -------------------------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        # Cell-batched Observation-1 classification, moved to
        # :func:`repro.indexes.kernels.grid_rho_batched` and sharded over
        # query chunks by the execution backend (bit-identical across
        # backends — each query's candidate cells and classification
        # sequence depend only on the query itself).
        self._require_fitted()
        if self._delta_grid is not None:
            return self._rho_segmented(float(dc))
        return self._sharded_rho(parallel.grid_rho_task, [float(dc)])[0]

    def rho_all_multi(self, dcs) -> np.ndarray:
        """ρ for a whole cut-off grid as one sharded ``(dc, chunk)`` wave."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        if self._delta_grid is not None:
            return np.stack([self._rho_segmented(dc) for dc in dcs])
        return np.stack(self._sharded_rho(parallel.grid_rho_task, dcs))

    def _rho_segmented(self, dc: float) -> np.ndarray:
        """ρ over the (base, delta) CSR pair, serially.

        Each image's pass counts the query's strict ``< dc`` neighbours
        among its own members and subtracts one self-count; every query is
        a member of exactly one image, so the union count is
        ``base + delta + 1``.  (The sharded path slices the base-only
        cell-sorted id array, so it resumes after compaction.)
        """
        points = self.points
        dg = self._delta_grid
        w = float(self.cell_size_)
        base = grid_rho_batched(
            points, None, dc, w, self._lo, self._shape,
            self._offsets, self._ids, self._cell_of, self.metric, self._stats,
            qcell=self._clamped_cells(self._lo, self._shape),
        )
        extra = grid_rho_batched(
            points, None, dc, w, dg["lo"], dg["shape"],
            dg["offsets"], dg["ids"], dg["cell_of"], self.metric, self._stats,
            qcell=self._clamped_cells(dg["lo"], dg["shape"]),
        )
        return base + extra + 1

    def _sharded_rho(self, task, dcs) -> "list[np.ndarray]":
        """Cell-locality override of the generic ``(dc, chunk)`` sharding.

        Chunks slice the *cell-sorted* id array (``self._ids``) rather than
        raw id ranges, so each shard walks only its own contiguous run of
        home cells — an id-range shard would re-sweep every occupied cell
        per task.  Any partition of the queries is bit-identical; this one
        is just the cache- and loop-friendly partition.  Counts scatter
        back into object-id order here.
        """
        chunks = self._execution().plan(self.n)
        payloads = [
            {"dc": float(dc), "start": start, "stop": stop}
            for dc in dcs
            for start, stop in chunks
        ]
        outs = self._dispatch(task, payloads)
        per_dc = len(chunks)
        rows = []
        for i in range(len(dcs)):
            rho = np.empty(self.n, dtype=np.int64)
            for j, (start, stop) in enumerate(chunks):
                rho[self._ids[start:stop]] = outs[i * per_dc + j]["rho"]
            rows.append(rho)
        return rows

    # -- δ query --------------------------------------------------------------------

    def _annotate_cell_maxrho(self, rho_rows: np.ndarray) -> np.ndarray:
        """Per-cell density bounds for every order, one ``reduceat`` pass.

        ``rho_rows`` is ``(n_orders, n)``; returns ``(n_orders, ncells)``.
        The grid analogue of the trees' maxrho annotation, reduced over the
        cell-sorted CSR layout: gathering densities in ``self._ids`` order
        makes every occupied cell a contiguous run, so one
        ``np.maximum.reduceat`` per call annotates every order of a sweep at
        once (empty cells keep ``-inf``) — the same bottom-up reduction shape
        the trees use, replacing the per-order Python ``zip`` scatter loop.
        """
        return self._cell_maxrho_rows(
            rho_rows, self._offsets, self._ids, self._shape
        )

    @staticmethod
    def _cell_maxrho_rows(rho_rows, offsets, ids_sorted, shape) -> np.ndarray:
        """The reduction of :meth:`_annotate_cell_maxrho` over any CSR image."""
        rho_rows = np.asarray(rho_rows, dtype=np.float64)
        nx, ny = shape
        maxrho = np.full((len(rho_rows), nx * ny), -np.inf, dtype=np.float64)
        occupied = np.flatnonzero(np.diff(offsets) > 0)
        if len(occupied):
            vals = rho_rows[:, ids_sorted]
            maxrho[:, occupied] = np.maximum.reduceat(
                vals, offsets[occupied], axis=1
            )
        return maxrho

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        if self.delta_mode == "batched":
            return self.delta_all_multi([order])[0]
        if self._delta_grid is not None:
            raise RuntimeError(
                "the scalar reference expansion does not traverse the delta "
                "segment; call compact() first (or use delta_mode='batched')"
            )
        points = self._require_fitted()
        n = len(points)
        if len(order) != n:
            raise ValueError(f"order has {len(order)} objects, index has {n}")
        self._cell_maxrho = self._annotate_cell_maxrho(
            np.asarray(order.rho)[None, :]
        )[0]
        delta = np.empty(n, dtype=np.float64)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
        # δ of the densest object(s): one blocked cross over all peak rows.
        peaks = order.global_peaks()
        delta[peaks] = peak_delta_sweep(points, peaks, self.metric, self._stats)
        is_peak = np.zeros(n, dtype=bool)
        is_peak[peaks] = True
        for p in np.flatnonzero(~is_peak):
            delta[p], mu[p] = self._delta_one(int(p), order)
        return delta, mu

    def delta_all_multi(
        self, orders: "Sequence[DensityOrder]"
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """δ/μ for several density orders over the one built grid.

        With the default batched mode, the whole sweep shares one cell-maxrho
        annotation per order and one home-cell-grouped ring schedule —
        element ``i`` is bit-identical to ``delta_all(orders[i])``.
        """
        points = self._require_fitted()
        n = len(points)
        orders = list(orders)
        for order in orders:
            if len(order) != n:
                raise ValueError(f"order has {len(order)} objects, index has {n}")
        if self.delta_mode != "batched":
            return [self.delta_all(order) for order in orders]
        if not orders:
            return []
        if self._delta_grid is not None:
            return self._delta_all_multi_segmented(orders)

        def run_engine(qid, qord, rho_rows, key_rows):
            # Annotate every order in one pass; traverse per (order, chunk)
            # task — the single-order gather paths beat one interleaved
            # union run, and the chunks are what the execution backend
            # shards over workers.
            cell_maxrho = self._annotate_cell_maxrho(rho_rows)
            self._cell_maxrho = cell_maxrho[-1]
            return self._sharded_delta_engine(
                parallel.grid_delta_task,
                qid,
                qord,
                len(rho_rows),
                {
                    "qid": qid,
                    "rho_rows": rho_rows,
                    "key_rows": key_rows,
                    "cell_maxrho": cell_maxrho,
                },
            )

        return delta_multi_from_orders(
            points, orders, run_engine, self.metric, self._stats
        )

    def _delta_all_multi_segmented(self, orders):
        """δ sweep over the (base, delta) CSR pair.

        Each image's ring engine is exact over its own member set when
        driven with the global density rows (stored ids are global point
        ids in both images); the union's nearest denser neighbour is the
        lexicographic ``(distance, id)`` minimum of the two per-image
        candidates.  Non-member queries expand rings from their *clamped*
        home cell — clamping only contracts per-axis distances to stored
        candidates, so the ``(r-1)·w`` ring bound and both pruning lemmas
        stay sound for every rect-bounds metric.  Runs serially on both
        images; compaction restores the sharded path.
        """
        points = self.points
        dg = self._delta_grid
        w = float(self.cell_size_)
        qcell_b = self._clamped_cells(self._lo, self._shape)
        qcell_d = self._clamped_cells(dg["lo"], dg["shape"])

        def run_engine(qid, qord, rho_rows, key_rows):
            cmr_b = self._annotate_cell_maxrho(rho_rows)
            self._cell_maxrho = cmr_b[-1]
            cmr_d = self._cell_maxrho_rows(
                rho_rows, dg["offsets"], dg["ids"], dg["shape"]
            )
            d_b, m_b = grid_delta_batched(
                points, qid, qord, rho_rows, key_rows, cmr_b,
                self._offsets, self._ids, self._cell_of, self._lo, w,
                self._shape, self.metric, self._stats, qcell=qcell_b,
            )
            d_d, m_d = grid_delta_batched(
                points, qid, qord, rho_rows, key_rows, cmr_d,
                dg["offsets"], dg["ids"], dg["cell_of"], dg["lo"], w,
                dg["shape"], self.metric, self._stats, qcell=qcell_d,
            )
            return merge_delta_candidates(d_b, m_b, d_d, m_d)

        return delta_multi_from_orders(
            points, orders, run_engine, self.metric, self._stats
        )

    def _delta_one(self, p: int, order: DensityOrder) -> Tuple[float, int]:
        q = self.points[p]
        w = self.cell_size_
        nx, ny = self._shape
        mindist = self.metric.rect_mindist
        dist_from = self.metric.distances_from
        stats = self._stats
        rho_p = order.rho[p]
        maxrho = self._cell_maxrho
        offsets = self._offsets
        home = self._cell_of[p]
        hx, hy = divmod(int(home), ny)
        best_d, best_id = np.inf, -1
        max_ring = max(nx, ny)

        def visit(ix: int, iy: int) -> None:
            nonlocal best_d, best_id
            flat = ix * ny + iy
            start, stop = offsets[flat], offsets[flat + 1]
            if start == stop:
                return
            if maxrho[flat] < rho_p:
                stats.nodes_pruned_density += 1
                return
            clo, chi = self._cell_box(ix, iy)
            if mindist(q, clo, chi) > best_d:
                stats.nodes_pruned_distance += 1
                return
            stats.nodes_visited += 1
            ids = self._ids[start:stop]
            denser = order.denser_mask(p, ids)
            stats.objects_scanned += len(ids)
            if not denser.any():
                return
            cand = ids[denser]
            d = dist_from(self.points[cand], q)
            stats.distance_evals += len(cand)
            k = np.lexsort((cand, d))[0]
            dk, ck = float(d[k]), int(cand[k])
            if dk < best_d or (dk == best_d and ck < best_id):
                best_d, best_id = dk, ck

        cr = getattr(self.metric, "coord_radius", None)
        for r in range(0, max_ring + 1):
            # Any cell in ring r is at least (r-1)·w away from q (q lies
            # inside its home cell); once that bound exceeds the candidate's
            # coordinate radius, no farther ring can improve it (Lemma 2 at
            # ring granularity, in coordinate units).
            if best_d < np.inf and (r - 1) * w > (
                best_d if cr is None else cr(best_d)
            ):
                break
            x0, x1 = hx - r, hx + r
            y0, y1 = hy - r, hy + r
            if r == 0:
                visit(hx, hy)
                continue
            any_in_range = False
            for ix in range(max(0, x0), min(nx - 1, x1) + 1):
                for iy in (y0, y1):
                    if 0 <= iy < ny:
                        any_in_range = True
                        visit(ix, iy)
            for iy in range(max(0, y0 + 1), min(ny - 1, y1 - 1) + 1):
                for ix in (x0, x1):
                    if 0 <= ix < nx:
                        any_in_range = True
                        visit(ix, iy)
            if not any_in_range and (x0 < 0 and x1 >= nx and y0 < 0 and y1 >= ny):
                break  # ring is entirely outside the grid
        return best_d, best_id

    # -- bookkeeping ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._offsets is None:
            return 0
        total = self._offsets.nbytes + self._ids.nbytes + self._cell_of.nbytes
        if self._cell_maxrho is not None:
            total += self._cell_maxrho.nbytes
        if self._delta_grid is not None:
            dg = self._delta_grid
            total += dg["offsets"].nbytes + dg["ids"].nbytes + dg["cell_of"].nbytes
        return int(total)
