"""List Index — the paper's N-List structure (Section 3.1, Algorithms 1–2).

For every object ``p`` the index stores *all* other objects sorted by
non-decreasing distance to ``p`` (the *N-List*).  Then:

* ``ρ(p)`` is the position of the farthest object with ``dist < dc`` — one
  binary search per object (Algorithm 2 lines 2–6), ``O(n log n)`` total;
* ``δ(p)`` is found by scanning the N-List near-to-far until the first
  denser object appears (Algorithm 2 lines 7–13) — expected ``O(1)`` probes
  per non-peak object (Theorem 1), so ``O(n)`` total in expectation.

Construction is ``O(n² log n)`` time and — the index's Achilles heel the
paper keeps returning to — ``Θ(n²)`` space.  The builder works in row blocks
so peak *transient* memory stays bounded, but the resident index is still
quadratic; use :class:`~repro.indexes.rn_list.RNListIndex` when that does not
fit (paper Section 3.3).

Implementation notes
--------------------
The N-Lists are stored as two ``(n, n-1)`` arrays (ids, distances).  Both
queries run through the batched kernels of :mod:`repro.indexes.kernels`:
ρ is one vectorised row-wise binary search over all objects (and, via
``rho_all_multi``, over all objects × all ``dc`` values of a sweep at once),
δ is the blockwise vectorised near-to-far scan, which preserves the
expected-O(1)-probes-per-object behaviour without a per-object Python loop.
Distance ties are ordered by ascending id (stable argsort), matching the
baseline's argmin convention.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import (
    density_order_key,
    prefetch_scan_block,
    row_searchsorted,
    scan_first_denser,
)

__all__ = ["ListIndex"]

# Kept as the historical private name; the shared implementation lives with
# the batched kernels so every index family encodes the density total order
# identically.
_order_key = density_order_key


def sweep_quantities(index, dcs, offsets, ids, dists, tie_break) -> "list[DPCQuantities]":
    """Shared batched-sweep assembly for the list-family indexes.

    ``index`` supplies ``rho_all_multi`` and ``_delta_from_order``; the CSR
    triple ``(offsets, ids, dists)`` is the index's neighbour storage.  One
    ρ pass answers the whole grid, and the δ scans share one pre-gathered
    first block — a narrow one: it still resolves the overwhelming majority
    of rows (Theorem 1) while keeping the per-``dc`` key-compare cheap, and
    the scan continues in ``scan_block`` strides for the stragglers.
    """
    dcs = index._validate_dcs(dcs)
    rhos = index.rho_all_multi(dcs)
    prefetch = prefetch_scan_block(offsets, ids, dists, min(8, index.scan_block))
    out = []
    for dc, rho in zip(dcs, rhos):
        order = DensityOrder(rho, tie_break)
        delta, mu = index._delta_from_order(order, prefetch=prefetch)
        out.append(
            DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)
        )
    return out


class ListIndex(DPCIndex):
    """Exact N-List index (paper Algorithms 1–2).

    Parameters
    ----------
    metric:
        Any registered metric (list indexes need no rectangle bounds).
    build_block_rows:
        Row-block size used during construction; bounds transient memory at
        ``O(block · n)`` without changing the result.
    scan_block:
        Column-block width of the vectorised δ scan.  Small blocks waste
        Python overhead, large blocks waste probes; 32 is a good default for
        the expected-constant-probe regime.
    """

    name: ClassVar[str] = "list"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(metric)
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        self._neighbor_ids: Optional[np.ndarray] = None  # (n, n-1) int32
        self._neighbor_dists: Optional[np.ndarray] = None  # (n, n-1) float64

    # -- construction (Algorithm 1) -------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError("ListIndex needs at least 2 points")
        ids = np.empty((n, n - 1), dtype=np.int32)
        dists = np.empty((n, n - 1), dtype=np.float64)
        all_ids = np.arange(n, dtype=np.int32)
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                # Drop self, then stable-sort by distance (ties by id).
                keep = all_ids != p
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                ids[p] = neigh[sorting]
                dists[p] = d[sorting]
        self._neighbor_ids = ids
        self._neighbor_dists = dists

    # CSR view of the dense rows, shared with the kernels (row p occupies
    # [p·(n-1), (p+1)·(n-1)) in the flat arrays).
    def _row_offsets(self) -> np.ndarray:
        n, m = self._neighbor_dists.shape
        return np.arange(n + 1, dtype=np.int64) * m

    # -- ρ query (Algorithm 2, lines 2-6) --------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        dists = self._neighbor_dists
        # searchsorted(side="left") == index of farthest object with
        # dist < dc, which *is* ρ(p) (Example 1 of the paper); one batched
        # binary search per object.
        rho = row_searchsorted(dists, float(dc)).astype(np.int64, copy=False)
        self._stats.binary_searches += len(dists)
        return rho

    def rho_all_multi(self, dcs) -> np.ndarray:
        """All objects × all cut-offs in a single batched binary search."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        pos = row_searchsorted(self._neighbor_dists, dcs[None, :])
        self._stats.binary_searches += pos.size
        return np.ascontiguousarray(pos.T).astype(np.int64, copy=False)

    # -- δ query (Algorithm 2, lines 7-13) --------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        if len(order) != len(self._neighbor_ids):
            raise ValueError(
                f"order has {len(order)} objects, index has {len(self._neighbor_ids)}"
            )
        return self._delta_from_order(order)

    def _delta_from_order(
        self, order: DensityOrder, prefetch=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        ids = self._neighbor_ids
        dists = self._neighbor_dists
        delta, mu, resolved, scanned = scan_first_denser(
            self._row_offsets(),
            ids.reshape(-1),
            dists.reshape(-1),
            _order_key(order),
            block=self.scan_block,
            prefetch=prefetch,
        )
        self._stats.objects_scanned += scanned
        # Whatever is left has no denser object at all: the single global
        # peak under TieBreak.ID, every maximal-density object under STRICT.
        # Paper convention: δ = max_q dist(p, q) = last N-List entry.
        peaks = np.flatnonzero(~resolved)
        delta[peaks] = dists[peaks, -1]
        mu[peaks] = NO_NEIGHBOR
        return delta, mu

    # -- multi-dc sweep -----------------------------------------------------------

    def quantities_multi(
        self, dcs, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> "list[DPCQuantities]":
        """Batched sweep: one ρ search for the whole grid, δ scans sharing
        one pre-gathered first block (its layout is ``dc``-independent)."""
        self._require_fitted()
        return sweep_quantities(
            self,
            dcs,
            self._row_offsets(),
            self._neighbor_ids.reshape(-1),
            self._neighbor_dists.reshape(-1),
            tie_break,
        )

    # -- bookkeeping -------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._neighbor_ids is None:
            return 0
        return int(self._neighbor_ids.nbytes + self._neighbor_dists.nbytes)

    # Exposed for CHIndex, which builds its histograms over these arrays, and
    # for white-box tests.
    @property
    def neighbor_ids(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_ids

    @property
    def neighbor_dists(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_dists
