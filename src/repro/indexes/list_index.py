"""List Index — the paper's N-List structure (Section 3.1, Algorithms 1–2).

For every object ``p`` the index stores *all* other objects sorted by
non-decreasing distance to ``p`` (the *N-List*).  Then:

* ``ρ(p)`` is the position of the farthest object with ``dist < dc`` — one
  binary search per object (Algorithm 2 lines 2–6), ``O(n log n)`` total;
* ``δ(p)`` is found by scanning the N-List near-to-far until the first
  denser object appears (Algorithm 2 lines 7–13) — expected ``O(1)`` probes
  per non-peak object (Theorem 1), so ``O(n)`` total in expectation.

Construction is ``O(n² log n)`` time and — the index's Achilles heel the
paper keeps returning to — ``Θ(n²)`` space.  The builder works in row blocks
so peak *transient* memory stays bounded, but the resident index is still
quadratic; use :class:`~repro.indexes.rn_list.RNListIndex` when that does not
fit (paper Section 3.3).

Implementation notes
--------------------
The N-Lists are stored as two ``(n, n-1)`` arrays (ids, distances) rather
than Python lists; the δ scan is vectorised across all unresolved objects in
column blocks, which preserves the expected-O(1)-probes-per-object behaviour
(most rows resolve in the first block) without a per-object Python loop.
Distance ties are ordered by ascending id (stable argsort), matching the
baseline's argmin convention.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, TieBreak
from repro.geometry.distance import Metric
from repro.indexes.base import DPCIndex

__all__ = ["ListIndex"]


class ListIndex(DPCIndex):
    """Exact N-List index (paper Algorithms 1–2).

    Parameters
    ----------
    metric:
        Any registered metric (list indexes need no rectangle bounds).
    build_block_rows:
        Row-block size used during construction; bounds transient memory at
        ``O(block · n)`` without changing the result.
    scan_block:
        Column-block width of the vectorised δ scan.  Small blocks waste
        Python overhead, large blocks waste probes; 32 is a good default for
        the expected-constant-probe regime.
    """

    name: ClassVar[str] = "list"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(metric)
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        self._neighbor_ids: Optional[np.ndarray] = None  # (n, n-1) int32
        self._neighbor_dists: Optional[np.ndarray] = None  # (n, n-1) float64

    # -- construction (Algorithm 1) -------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError("ListIndex needs at least 2 points")
        ids = np.empty((n, n - 1), dtype=np.int32)
        dists = np.empty((n, n - 1), dtype=np.float64)
        all_ids = np.arange(n, dtype=np.int32)
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                # Drop self, then stable-sort by distance (ties by id).
                keep = all_ids != p
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                ids[p] = neigh[sorting]
                dists[p] = d[sorting]
        self._neighbor_ids = ids
        self._neighbor_dists = dists

    # -- ρ query (Algorithm 2, lines 2-6) --------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        dists = self._neighbor_dists
        n = len(dists)
        rho = np.empty(n, dtype=np.int64)
        for p in range(n):
            # searchsorted(side="left") == index of farthest object with
            # dist < dc, which *is* ρ(p) (Example 1 of the paper).
            rho[p] = np.searchsorted(dists[p], dc, side="left")
        self._stats.binary_searches += n
        return rho

    # -- δ query (Algorithm 2, lines 7-13) --------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        ids = self._neighbor_ids
        dists = self._neighbor_dists
        n = len(ids)
        if len(order) != n:
            raise ValueError(f"order has {len(order)} objects, index has {n}")
        delta = np.empty(n, dtype=np.float64)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)

        unresolved = np.arange(n)
        width = ids.shape[1]
        for col in range(0, width, self.scan_block):
            hi = min(col + self.scan_block, width)
            cand = ids[unresolved, col:hi]
            if order.tie_break is TieBreak.ID:
                denser = order.rank[cand] < order.rank[unresolved, None]
            else:
                denser = order.rho[cand] > order.rho[unresolved, None]
            self._stats.objects_scanned += cand.size
            found = denser.any(axis=1)
            if found.any():
                first = denser[found].argmax(axis=1)
                rows = unresolved[found]
                delta[rows] = dists[rows, col + first]
                mu[rows] = cand[found, first]
                unresolved = unresolved[~found]
            if len(unresolved) == 0:
                break

        # Whatever is left has no denser object at all: the single global
        # peak under TieBreak.ID, every maximal-density object under STRICT.
        # Paper convention: δ = max_q dist(p, q) = last N-List entry.
        for p in unresolved:
            delta[p] = dists[p, -1]
            mu[p] = NO_NEIGHBOR
        return delta, mu

    # -- bookkeeping -------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._neighbor_ids is None:
            return 0
        return int(self._neighbor_ids.nbytes + self._neighbor_dists.nbytes)

    # Exposed for CHIndex, which builds its histograms over these arrays, and
    # for white-box tests.
    @property
    def neighbor_ids(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_ids

    @property
    def neighbor_dists(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_dists
