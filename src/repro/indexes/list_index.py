"""List Index — the paper's N-List structure (Section 3.1, Algorithms 1–2).

For every object ``p`` the index stores *all* other objects sorted by
non-decreasing distance to ``p`` (the *N-List*).  Then:

* ``ρ(p)`` is the position of the farthest object with ``dist < dc`` — one
  binary search per object (Algorithm 2 lines 2–6), ``O(n log n)`` total;
* ``δ(p)`` is found by scanning the N-List near-to-far until the first
  denser object appears (Algorithm 2 lines 7–13) — expected ``O(1)`` probes
  per non-peak object (Theorem 1), so ``O(n)`` total in expectation.

Construction is ``O(n² log n)`` time and — the index's Achilles heel the
paper keeps returning to — ``Θ(n²)`` space.  The builder works in row blocks
so peak *transient* memory stays bounded, but the resident index is still
quadratic; use :class:`~repro.indexes.rn_list.RNListIndex` when that does not
fit (paper Section 3.3).

Implementation notes
--------------------
The N-Lists are stored as two ``(n, n-1)`` arrays (ids, distances).  Both
queries run through the batched kernels of :mod:`repro.indexes.kernels`:
ρ is one vectorised row-wise binary search over all objects (and, via
``rho_all_multi``, over all objects × all ``dc`` values of a sweep at once),
δ is the blockwise vectorised near-to-far scan, which preserves the
expected-O(1)-probes-per-object behaviour without a per-object Python loop.
Distance ties are ordered by ascending id (stable argsort), matching the
baseline's argmin convention.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric
from repro.indexes import parallel
from repro.indexes.base import DPCIndex
from repro.indexes.kernels import density_order_key

__all__ = ["ListIndex"]

# Kept as the historical private name; the shared implementation lives with
# the batched kernels so every index family encodes the density total order
# identically.
_order_key = density_order_key


def sweep_quantities(index, dcs, tie_break) -> "list[DPCQuantities]":
    """Shared batched-sweep assembly for the list-family indexes.

    ``index`` supplies ``rho_all_multi`` and ``_delta_sweep``.  One sharded
    ρ pass answers the whole grid, then the δ scans run as one
    ``(dc, chunk)`` task grid; each chunk gathers its own narrow prefetch
    block — narrow because it still resolves the overwhelming majority of
    rows (Theorem 1) while keeping the per-``dc`` key-compare cheap, with
    the scan continuing in ``scan_block`` strides for the stragglers.
    """
    dcs = index._validate_dcs(dcs)
    rhos = index.rho_all_multi(dcs)
    orders = [DensityOrder(rho, tie_break) for rho in rhos]
    deltas = index._delta_sweep(orders, prefetch_width=min(8, index.scan_block))
    return [
        DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)
        for dc, rho, order, (delta, mu) in zip(dcs, rhos, orders, deltas)
    ]


def sharded_delta_scan(index, orders, prefetch_width: int):
    """δ/μ per density order via the sharded near-to-far CSR scan.

    The chunked task grid shared by the N-List and RN-List indexes: one
    task per row chunk, each scanning *all* density orders of the sweep
    against one shared prefetch gather (the candidate layout is
    ``dc``-independent, so a per-order regather would multiply the
    dominant gather by the sweep width).  Unresolved rows
    (``mu == NO_NEIGHBOR``) are handed back to the index's
    ``_finish_unresolved`` hook — the peak convention differs between the
    exact and truncated lists.
    """
    keys = np.stack([_order_key(order) for order in orders])
    payloads = [
        {
            "start": start,
            "stop": stop,
            "block": index.scan_block,
            "prefetch_width": prefetch_width,
        }
        for start, stop in index._execution().plan(index.n)
    ]
    outs = index._dispatch(parallel.scan_delta_task, payloads, {"keys": keys})
    results = []
    for o in range(len(orders)):
        delta = np.concatenate([out["delta"][o] for out in outs])
        mu = np.concatenate([out["mu"][o] for out in outs])
        index._finish_unresolved(delta, mu)
        results.append((delta, mu))
    return results


class ListIndex(DPCIndex):
    """Exact N-List index (paper Algorithms 1–2).

    Parameters
    ----------
    metric:
        Any registered metric (list indexes need no rectangle bounds).
    build_block_rows:
        Row-block size used during construction; bounds transient memory at
        ``O(block · n)`` without changing the result.
    scan_block:
        Column-block width of the vectorised δ scan.  Small blocks waste
        Python overhead, large blocks waste probes; 32 is a good default for
        the expected-constant-probe regime.
    backend, n_jobs, chunk_size:
        Query-execution policy (:mod:`repro.indexes.parallel`): both queries
        shard over row chunks; results are bit-identical across backends.
    """

    name: ClassVar[str] = "list"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        build_block_rows: int = 512,
        scan_block: int = 32,
        backend: "str" = "serial",
        n_jobs: "int | None" = None,
        chunk_size: "int | None" = None,
    ):
        super().__init__(metric, backend=backend, n_jobs=n_jobs, chunk_size=chunk_size)
        if build_block_rows <= 0:
            raise ValueError(f"build_block_rows must be positive, got {build_block_rows}")
        if scan_block <= 0:
            raise ValueError(f"scan_block must be positive, got {scan_block}")
        self.build_block_rows = build_block_rows
        self.scan_block = scan_block
        self._neighbor_ids: Optional[np.ndarray] = None  # (n, n-1) int32
        self._neighbor_dists: Optional[np.ndarray] = None  # (n, n-1) float64

    # -- construction (Algorithm 1) -------------------------------------------

    def _build(self) -> None:
        points = self.points
        n = len(points)
        if n < 2:
            raise ValueError("ListIndex needs at least 2 points")
        ids = np.empty((n, n - 1), dtype=np.int32)
        dists = np.empty((n, n - 1), dtype=np.float64)
        all_ids = np.arange(n, dtype=np.int32)
        for start in range(0, n, self.build_block_rows):
            stop = min(start + self.build_block_rows, n)
            block = self.metric.cross(points[start:stop], points)
            for i, p in enumerate(range(start, stop)):
                row = block[i]
                # Drop self, then stable-sort by distance (ties by id).
                keep = all_ids != p
                neigh = all_ids[keep]
                d = row[keep]
                sorting = np.argsort(d, kind="stable")
                ids[p] = neigh[sorting]
                dists[p] = d[sorting]
        self._neighbor_ids = ids
        self._neighbor_dists = dists

    # -- incremental maintenance -------------------------------------------------

    def _append(self, new_points: np.ndarray) -> None:
        """Merge a batch into every N-List instead of refitting.

        The N-List rows are per-object sorted runs, so a batch folds in as
        a sorted merge: each base row takes its ``k`` new entries at their
        ``searchsorted`` positions (``side="right"`` — new ids are larger,
        so distance ties keep ascending-id order), and each new object gets
        a freshly sorted full row.  Only the ``O(k·n)`` new distances are
        evaluated (elementwise, bit-identical to what a fresh build would
        compute), versus ``O(n²)`` for a refit; the result is
        indistinguishable from ``fit`` on the combined points, so the list
        family compacts on every append (``delta_size`` stays 0).
        """
        base = self.points
        base_n = len(base)
        combined = np.concatenate([base, new_points])
        n = len(combined)
        k = n - base_n
        old_ids, old_dists = self._neighbor_ids, self._neighbor_dists
        ids = np.empty((n, n - 1), dtype=np.int32)
        dists = np.empty((n, n - 1), dtype=np.float64)
        cross_no = self.metric.cross(new_points, base)  # (k, base_n)
        cross_nn = self.metric.cross(new_points, new_points)
        new_ids = np.arange(base_n, n, dtype=np.int32)
        for p in range(base_n):
            d_new = cross_no[:, p]
            srt = np.argsort(d_new, kind="stable")
            ins = np.searchsorted(old_dists[p], d_new[srt], side="right")
            ids[p] = np.insert(old_ids[p], ins, new_ids[srt])
            dists[p] = np.insert(old_dists[p], ins, d_new[srt])
        all_ids = np.arange(n, dtype=np.int32)
        for i in range(k):
            p = base_n + i
            row = np.concatenate([cross_no[i], cross_nn[i]])
            keep = all_ids != p
            d = row[keep]
            sorting = np.argsort(d, kind="stable")
            ids[p] = all_ids[keep][sorting]
            dists[p] = d[sorting]
        self.points = combined
        self._neighbor_ids = ids
        self._neighbor_dists = dists

    # CSR view of the dense rows, shared with the kernels (row p occupies
    # [p·(n-1), (p+1)·(n-1)) in the flat arrays).
    def _row_offsets(self) -> np.ndarray:
        n, m = self._neighbor_dists.shape
        return np.arange(n + 1, dtype=np.int64) * m

    # -- sharded-execution image (repro.indexes.parallel) ------------------------

    def _shard_arrays(self):
        return {
            "ids": self._neighbor_ids,
            "dists": self._neighbor_dists,
            "offsets": self._row_offsets(),
        }

    def _shard_meta(self):
        n, m = self._neighbor_dists.shape
        return {"n": n, "row_len": m}

    # -- ρ query (Algorithm 2, lines 2-6) --------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        # searchsorted(side="left") == index of farthest object with
        # dist < dc, which *is* ρ(p) (Example 1 of the paper); one batched
        # binary search per object, sharded over row chunks.
        return self._list_rho(float(dc))

    def rho_all_multi(self, dcs) -> np.ndarray:
        """All objects × all cut-offs in one sharded batched binary search."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        pos = self._list_rho([float(dc) for dc in dcs])
        return np.ascontiguousarray(pos.T).astype(np.int64, copy=False)

    def _list_rho(self, needles):
        payloads = [
            {"start": start, "stop": stop, "needles": needles}
            for start, stop in self._execution().plan(self.n)
        ]
        outs = self._dispatch(parallel.list_rho_task, payloads)
        return np.concatenate([o["rho"] for o in outs]).astype(np.int64, copy=False)

    # -- δ query (Algorithm 2, lines 7-13) --------------------------------------

    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        self._require_fitted()
        if len(order) != len(self._neighbor_ids):
            raise ValueError(
                f"order has {len(order)} objects, index has {len(self._neighbor_ids)}"
            )
        return self._delta_sweep([order], prefetch_width=0)[0]

    def _delta_sweep(self, orders, prefetch_width: int = 0):
        """Sharded near-to-far scans, one ``(order, chunk)`` task grid."""
        return sharded_delta_scan(self, orders, prefetch_width)

    def _finish_unresolved(self, delta: np.ndarray, mu: np.ndarray) -> None:
        # Whatever the scan left has no denser object at all: the single
        # global peak under TieBreak.ID, every maximal-density object under
        # STRICT.  Paper convention: δ = max_q dist(p, q) = last list entry.
        peaks = np.flatnonzero(mu == NO_NEIGHBOR)
        delta[peaks] = self._neighbor_dists[peaks, -1]

    # -- multi-dc sweep -----------------------------------------------------------

    def _quantities_multi_impl(
        self, dcs, tie_break: "str | TieBreak"
    ) -> "list[DPCQuantities]":
        """Batched sweep: one sharded ρ search for the whole grid, then the
        δ scans as one ``(dc, chunk)`` task grid (each chunk gathering its
        ``dc``-independent prefetch block)."""
        return sweep_quantities(self, dcs, tie_break)

    # -- bookkeeping -------------------------------------------------------------

    def memory_bytes(self) -> int:
        if self._neighbor_ids is None:
            return 0
        return int(self._neighbor_ids.nbytes + self._neighbor_dists.nbytes)

    # Exposed for CHIndex, which builds its histograms over these arrays, and
    # for white-box tests.
    @property
    def neighbor_ids(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_ids

    @property
    def neighbor_dists(self) -> np.ndarray:
        self._require_fitted()
        return self._neighbor_dists
