"""Cumulative Histogram (CH) Index — paper Section 3.2, Algorithms 3–4.

The CH Index augments every N-List with a *cumulative histogram*: bin ``k``
stores how many neighbours lie within distance ``(k+1)·w`` (equivalently, the
N-List position of the last such neighbour).  A ρ query then

1. locates ``targetBin = ⌊dc / w⌋`` in O(1),
2. reads the section boundaries from the two surrounding bins, and
3. binary-searches only that tiny N-List section.

With a well-chosen ``w`` the section length is near-constant, so computing ρ
for all objects is O(n) (Theorem 2) — versus O(n log n) for the plain List
Index.  δ queries are inherited unchanged from the List Index (the paper's
Fig. 8 discussion: for fixed ``w`` the two indexes differ only in ρ time).

The histograms cost extra space on top of the already-quadratic N-List
(paper Table 3 shows CH ≈ List + a few hundred KB); ``memory_bytes`` reports
both so the harness can reproduce that comparison, and
``histogram_memory_bytes`` isolates the histogram part (Figure 9a).

Refit contract
--------------
``bin_width`` holds what the caller configured (possibly ``None`` = auto)
and is never mutated; the width actually used by a fit is resolved into
``bin_width_``.  Re-fitting the same instance on a different dataset
therefore re-resolves the automatic width instead of silently reusing the
first dataset's (a seed bug this split fixed).

Histogram construction and the ρ query both run through the batched kernels
in :mod:`repro.indexes.kernels` — no per-object Python loops.
"""

from __future__ import annotations

from typing import ClassVar, Optional

import numpy as np

from repro.geometry.distance import Metric
from repro.indexes import parallel
from repro.indexes.kernels import build_row_histograms
from repro.indexes.list_index import ListIndex

__all__ = ["CumulativeHistogramMixin", "CHIndex"]


class CumulativeHistogramMixin:
    """The configured-vs-resolved ``bin_width`` contract shared by the
    exact (:class:`CHIndex`) and truncated
    (:class:`~repro.indexes.rn_list.RNCHIndex`) histogram indexes:
    ``bin_width`` is what the caller asked for (``None`` = auto) and is
    never mutated; each fit resolves the width actually used into
    ``bin_width_``; queries on a restored index fall back to the configured
    value when no resolution survived deserialisation.
    """

    def _init_bin_width(self, bin_width: Optional[float], default_bins: int) -> None:
        if bin_width is not None and bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if default_bins <= 0:
            raise ValueError(f"default_bins must be positive, got {default_bins}")
        self.bin_width = bin_width
        self.default_bins = default_bins
        self.bin_width_: Optional[float] = None  # resolved per fit

    def _resolved_bin_width(self) -> float:
        if self.bin_width_ is not None:
            return float(self.bin_width_)
        if self.bin_width is not None:
            # Restored indexes (persist.py) may carry only the configured w.
            return float(self.bin_width)
        raise RuntimeError(f"{type(self).__name__} has no resolved bin width; fit first")

    def _ch_rho_wave(self, dcs) -> "list":
        """Algorithm 4 for several cut-offs as one sharded ``(dc, chunk)``
        task wave — no synchronization barrier between the cut-offs of a
        sweep.  The global largest histogram pins the resolved target bin
        so every chunk decides exactly like a whole-table call.
        """
        max_bins = int(np.diff(self._hist_offsets).max())
        w = self._resolved_bin_width()
        chunks = self._execution().plan(self.n)
        payloads = [
            {"start": start, "stop": stop, "dc": float(dc), "w": w, "max_bins": max_bins}
            for dc in dcs
            for start, stop in chunks
        ]
        outs = self._dispatch(parallel.ch_rho_task, payloads)
        per_dc = len(chunks)
        return [
            np.concatenate([outs[i * per_dc + j]["rho"] for j in range(per_dc)])
            for i in range(len(dcs))
        ]


class CHIndex(CumulativeHistogramMixin, ListIndex):
    """Exact CH Index: N-Lists plus per-object cumulative histograms.

    Parameters
    ----------
    bin_width:
        Histogram bin width ``w`` (same units as the metric).  ``None``
        (default) picks ``diameter / default_bins`` at fit time — the paper
        stresses that ``w`` trades query time against space (Fig. 7/9a), so
        the constructor exposes it directly.  The per-fit resolved value is
        ``bin_width_``.
    default_bins:
        Target bin count for the automatic ``w``.
    """

    name: ClassVar[str] = "ch"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        bin_width: Optional[float] = None,
        default_bins: int = 128,
        build_block_rows: int = 512,
        scan_block: int = 32,
        backend: "str" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        super().__init__(
            metric,
            build_block_rows,
            scan_block,
            backend=backend,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
        )
        self._init_bin_width(bin_width, default_bins)
        self._hist_offsets: Optional[np.ndarray] = None  # (n+1,) int64 CSR offsets
        self._hist_values: Optional[np.ndarray] = None  # flat int64 bin densities

    # -- construction (Algorithm 3, vectorised) ---------------------------------

    def _build(self) -> None:
        super()._build()
        self._refresh_histograms()

    def _append(self, new_points: np.ndarray) -> None:
        # The N-Lists merge in place (ListIndex); the histograms must be
        # recomputed outright — appended points can grow the diameter, and
        # the automatic bin width resolves from it.
        super()._append(new_points)
        self._refresh_histograms()

    def _refresh_histograms(self) -> None:
        dists = self._neighbor_dists
        if self.bin_width is None:
            diameter = float(dists[:, -1].max())
            if diameter <= 0.0:
                raise ValueError("all points coincide; cannot choose a bin width")
            self.bin_width_ = diameter / self.default_bins
        else:
            self.bin_width_ = float(self.bin_width)
        w = float(self.bin_width_)

        # Per object p: number of bins covers its whole N-List, i.e. up to the
        # farthest neighbour (Algorithm 3 loops until the list is exhausted).
        # Bin k (0-based) stores |{q : dist(p,q) < (k+1)w}| — the batched
        # histogram kernel computes all rows in one binning pass.
        max_dist = dists[:, -1]
        n_bins = np.floor(max_dist / w).astype(np.int64) + 1
        edges = w * np.arange(1, int(n_bins.max()) + 1, dtype=np.float64)
        offsets, values = build_row_histograms(
            dists.reshape(-1), self._row_offsets(), n_bins, edges
        )
        # The last bin must contain the whole list (Algorithm 3 line 13).
        values[offsets[1:] - 1] = dists.shape[1]
        self._hist_offsets = offsets
        self._hist_values = values

    # -- sharded-execution image (adds the histograms to the N-List image) -------

    def _shard_arrays(self):
        arrays = super()._shard_arrays()
        arrays["hist_offsets"] = self._hist_offsets
        arrays["hist_values"] = self._hist_values
        return arrays

    # -- ρ query (Algorithm 4) ----------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        return self._ch_rho_wave([float(dc)])[0]

    def rho_all_multi(self, dcs) -> np.ndarray:
        """Histogram-guided ρ for the whole grid in one ``(dc, chunk)`` wave."""
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        return np.stack(self._ch_rho_wave([float(dc) for dc in dcs]))

    # δ query inherited from ListIndex (identical by design; see module doc).

    # -- bookkeeping ---------------------------------------------------------------

    def histogram_memory_bytes(self) -> int:
        """Space of the cumulative histograms alone (paper Figure 9a)."""
        if self._hist_values is None:
            return 0
        return int(self._hist_values.nbytes + self._hist_offsets.nbytes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.histogram_memory_bytes()

    def n_bins_of(self, p: int) -> int:
        """Bin count of object ``p``'s histogram (white-box tests)."""
        self._require_fitted()
        return int(self._hist_offsets[p + 1] - self._hist_offsets[p])
