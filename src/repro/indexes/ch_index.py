"""Cumulative Histogram (CH) Index — paper Section 3.2, Algorithms 3–4.

The CH Index augments every N-List with a *cumulative histogram*: bin ``k``
stores how many neighbours lie within distance ``(k+1)·w`` (equivalently, the
N-List position of the last such neighbour).  A ρ query then

1. locates ``targetBin = ⌊dc / w⌋`` in O(1),
2. reads the section boundaries from the two surrounding bins, and
3. binary-searches only that tiny N-List section.

With a well-chosen ``w`` the section length is near-constant, so computing ρ
for all objects is O(n) (Theorem 2) — versus O(n log n) for the plain List
Index.  δ queries are inherited unchanged from the List Index (the paper's
Fig. 8 discussion: for fixed ``w`` the two indexes differ only in ρ time).

The histograms cost extra space on top of the already-quadratic N-List
(paper Table 3 shows CH ≈ List + a few hundred KB); ``memory_bytes`` reports
both so the harness can reproduce that comparison, and
``histogram_memory_bytes`` isolates the histogram part (Figure 9a).
"""

from __future__ import annotations

from typing import ClassVar, Optional

import numpy as np

from repro.geometry.distance import Metric
from repro.indexes.list_index import ListIndex

__all__ = ["CHIndex"]


class CHIndex(ListIndex):
    """Exact CH Index: N-Lists plus per-object cumulative histograms.

    Parameters
    ----------
    bin_width:
        Histogram bin width ``w`` (same units as the metric).  ``None``
        (default) picks ``diameter / default_bins`` at fit time — the paper
        stresses that ``w`` trades query time against space (Fig. 7/9a), so
        the constructor exposes it directly.
    default_bins:
        Target bin count for the automatic ``w``.
    """

    name: ClassVar[str] = "ch"

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        bin_width: Optional[float] = None,
        default_bins: int = 128,
        build_block_rows: int = 512,
        scan_block: int = 32,
    ):
        super().__init__(metric, build_block_rows, scan_block)
        if bin_width is not None and bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if default_bins <= 0:
            raise ValueError(f"default_bins must be positive, got {default_bins}")
        self.bin_width = bin_width
        self.default_bins = default_bins
        self._hist_offsets: Optional[np.ndarray] = None  # (n+1,) int64 CSR offsets
        self._hist_values: Optional[np.ndarray] = None  # flat int64 bin densities

    # -- construction (Algorithm 3, vectorised) ---------------------------------

    def _build(self) -> None:
        super()._build()
        dists = self._neighbor_dists
        n = len(dists)
        if self.bin_width is None:
            diameter = float(dists[:, -1].max())
            if diameter <= 0.0:
                raise ValueError("all points coincide; cannot choose a bin width")
            self.bin_width = diameter / self.default_bins
        w = float(self.bin_width)

        # Per object p: number of bins covers its whole N-List, i.e. up to the
        # farthest neighbour (Algorithm 3 loops until the list is exhausted).
        # Bin k (0-based) stores |{q : dist(p,q) < (k+1)w}| — exactly a
        # searchsorted against the sorted distance row.
        max_dist = dists[:, -1]
        n_bins = np.floor(max_dist / w).astype(np.int64) + 1
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(n_bins, out=offsets[1:])
        values = np.empty(int(offsets[-1]), dtype=np.int64)
        for p in range(n):
            edges = w * np.arange(1, n_bins[p] + 1, dtype=np.float64)
            values[offsets[p] : offsets[p + 1]] = np.searchsorted(
                dists[p], edges, side="left"
            )
        # The last bin must contain the whole list (Algorithm 3 line 13).
        values[offsets[1:] - 1] = dists.shape[1]
        self._hist_offsets = offsets
        self._hist_values = values

    # -- ρ query (Algorithm 4) ----------------------------------------------------

    def rho_all(self, dc: float) -> np.ndarray:
        self._require_fitted()
        w = float(self.bin_width)
        dists = self._neighbor_dists
        offsets = self._hist_offsets
        values = self._hist_values
        n = len(dists)

        bin_real = dc / w
        target = int(np.floor(bin_real))
        on_edge = bin_real == target  # dc is exactly a bin upper limit

        rho = np.empty(n, dtype=np.int64)
        for p in range(n):
            start, stop = offsets[p], offsets[p + 1]
            size = stop - start
            if target >= size:
                # dc beyond the last bin: every neighbour is within dc.
                rho[p] = values[stop - 1]
            elif on_edge:
                # dc == target*w: bin (target-1) already holds the answer.
                rho[p] = values[start + target - 1] if target > 0 else 0
            else:
                first = values[start + target - 1] if target > 0 else 0
                last = values[start + target]
                if first == last:
                    rho[p] = first
                else:
                    section = dists[p, first:last]
                    rho[p] = first + np.searchsorted(section, dc, side="left")
                    self._stats.objects_scanned += int(last - first)
                    self._stats.binary_searches += 1
        return rho

    # δ query inherited from ListIndex (identical by design; see module doc).

    # -- bookkeeping ---------------------------------------------------------------

    def histogram_memory_bytes(self) -> int:
        """Space of the cumulative histograms alone (paper Figure 9a)."""
        if self._hist_values is None:
            return 0
        return int(self._hist_values.nbytes + self._hist_offsets.nbytes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.histogram_memory_bytes()

    def n_bins_of(self, p: int) -> int:
        """Bin count of object ``p``'s histogram (white-box tests)."""
        self._require_fitted()
        return int(self._hist_offsets[p + 1] - self._hist_offsets[p])
