"""Sharded parallel execution backends for the batched ρ/δ kernels.

Parallel execution
------------------
PR 1 and PR 2 rewrote every per-object query loop onto the batched kernel
layer (:mod:`repro.indexes.kernels`); this module shards those kernels over
*query chunks* and runs the chunks on worker pools.  The work is exactly the
shape the parallel-DPC literature exploits ("Faster Parallel Exact Density
Peaks Clustering", Huang / Yu / Shun): every query's ρ count and δ search is
independent of every other query's, so a chunk of queries is an embarrassingly
parallel task over the frozen index image.

Three backends share one chunk-planning code path (:func:`plan_chunks`):

* ``"serial"`` — the default: one chunk covering all queries, executed
  inline.  Zero overhead over the pre-backend code path.
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; useful
  for kernel sections that release the GIL (BLAS/einsum reductions) and for
  exercising the chunked path without process machinery.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` over
  **shared-memory** views of the index image: the point array, the FlatTree
  structure-of-arrays image, the grid CSR arrays, or the N-List rows are
  published once per fit into :class:`multiprocessing.shared_memory` segments
  (:class:`ShmPack`), and workers attach by name — no index is ever pickled
  per task.  Per-run inputs (density rows, order keys, ``maxrho``
  annotations) travel through a second, ephemeral pack that is unlinked the
  moment the run's futures settle.

Backend selection hangs off every index: ``DPCIndex(...,
backend="process", n_jobs=4, chunk_size=2048)`` or, after construction,
``index.set_execution(backend="process", n_jobs=4)``.  Multi-``dc`` sweeps
shard the full ``(dc, chunk)`` — respectively ``(order, chunk)`` — task
grid, so a sweep keeps every worker busy even when one cut-off has fewer
chunks than workers.

Bit-identity contract
---------------------
Results (ρ, δ, μ — and therefore labels and halo) and the
:class:`~repro.indexes.base.IndexStats` probe counters are **bit-identical**
across backends, worker counts and chunk sizes, ties and smaller-id μ
included.  Three properties make this hold:

* every kernel decision for query ``p`` reads only ``p``'s own state (its
  pruning radius, its candidate segments), never another query's;
* the distance kernels are elementwise (einsum over per-element
  differences, never shape-dependent BLAS reductions), so a row computed in
  a chunk of 7 equals the row computed in a chunk of 70 000;
* kernel scan strides use absolute column boundaries
  (:func:`repro.indexes.kernels.scan_first_denser`), so per-query counter
  contributions do not depend on which rows share a batch.

Workers accumulate probe counters into a private
:class:`~repro.indexes.base.IndexStats` and return the deltas; the parent
folds them into the index's counters.  Counter totals are integer sums, so
merge order is irrelevant and the seed counter semantics survive sharding.

Failure / cleanup contract
--------------------------
An exception raised inside a worker chunk (e.g. a metric that rejects its
input) is re-raised in the parent with its original type and message;
in-flight chunks are awaited first, and ephemeral shared-memory segments
are unlinked in a ``finally`` block, so a failed run leaks nothing.
Fit-time packs live until the index is re-fitted (``fit`` invalidates
shard plans and unlinks the pack — stale images can never serve a new
dataset), explicitly released (``index.release_execution()``), or
garbage-collected (a ``weakref.finalize`` guard unlinks the segment even
on abandoned indexes).

Fault tolerance
---------------
*Infrastructure* failures — a worker process dying
(:class:`~concurrent.futures.BrokenExecutor`), a shared-memory segment
vanishing mid-run (``FileNotFoundError`` on attach), a chunk result failing
its integrity checksum (:class:`ChunkIntegrityError`), or an injected chaos
fault (:class:`~repro.faults.InjectedFault`) — are **retryable**: the
failed chunks (only those) are re-executed with jittered exponential
backoff, and after ``max_retries`` exhausted rounds the run *degrades* one
rung down the ladder ``process → threads → serial`` and continues there.
Because every chunk is a pure function of the frozen index image, a chunk
recomputed on any rung returns bit-identical results and probe counters —
degradation trades throughput, never answers.  Deterministic (non-injected)
errors raised by the kernels themselves — a metric rejecting its input, a
``ValueError`` — stay fail-fast with their original type and message.

Every chunk result carries a CRC-32 computed in the worker *after* the
kernels ran; the parent re-verifies it before accepting, so a payload
corrupted in transit (shared memory, pickling) is retried instead of
silently merged.  Retries, pool breaks and degradations are recorded on the
:class:`ExecutionBackend` (:meth:`ExecutionBackend.health`), which the
serving layer surfaces through ``ClusteringService.stats()``; a degraded
backend stays on its rung until :meth:`ExecutionBackend.reset_degradation`.
"""

from __future__ import annotations

import os
import random
import threading
import time
import uuid
import weakref
import zlib
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro import faults
from repro.faults import InjectedFault, WorkerCrashError
from repro.geometry.distance import get_metric
from repro.indexes.base import IndexStats
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.indexes.kernels import (
    FlatTree,
    bounded_searchsorted,
    ch_rho_from_histograms,
    grid_delta_batched,
    grid_rho_batched,
    prefetch_scan_block,
    row_searchsorted,
    scan_first_denser,
    tree_delta_batched,
    tree_rho_batched,
)

__all__ = [
    "BACKENDS",
    "DEGRADE_TO",
    "RETRYABLE_ERRORS",
    "SHM_PREFIX",
    "ChunkIntegrityError",
    "ExecutionBackend",
    "ShmPack",
    "attach_pack_views",
    "detach_pack",
    "plan_chunks",
    "resolve_n_jobs",
    "metric_token",
    "metric_from_token",
    "run_index_tasks",
]

#: Recognised backend kinds (one chunk-planning code path for all three).
BACKENDS = ("serial", "threads", "process")

#: Degradation ladder: when one rung keeps failing, execution falls to the
#: next.  ``serial`` has no fallback — its failures propagate.
DEGRADE_TO = {"process": "threads", "threads": "serial", "serial": None}


class ChunkIntegrityError(RuntimeError):
    """A worker chunk's result failed its integrity checksum.

    The checksum is computed in the worker after the kernels ran and
    re-verified in the parent, so this means the payload was corrupted in
    transit (shared memory, pickling) — the chunk is retried, never merged.
    """


#: Failure types the chunk supervisor treats as transient infrastructure
#: faults (retry, then degrade).  Everything else — kernel ``ValueError``s,
#: metric ``TypeError``s — is deterministic and propagates immediately with
#: its original type and message.
RETRYABLE_ERRORS = (
    BrokenExecutor,
    ChunkIntegrityError,
    InjectedFault,
    FileNotFoundError,  # a shm segment unlinked while tasks still attach
    ConnectionError,  # a dying pool's pipes
    EOFError,
)

#: Shared-memory segment name prefix — recognisable in /dev/shm, so leak
#: checks (tests, ops) can assert nothing of ours is left behind.
SHM_PREFIX = "repro_shard"


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Worker count: ``None``/``0``/negative mean "all *usable* cores".

    Usable means the scheduling affinity mask (cgroup/taskset limits on
    containers and CI runners), not the box's total core count —
    ``os.cpu_count()`` on a 64-core host restricted to 4 cores would spawn
    a 16x-oversubscribed pool.  Platforms without ``sched_getaffinity``
    (macOS) fall back to ``cpu_count()``.
    """
    if n_jobs is None or n_jobs <= 0:
        try:
            usable = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - platform-dependent
            usable = os.cpu_count() or 1
        return max(1, usable)
    return int(n_jobs)


def plan_chunks(
    n: int, chunk_size: Optional[int], n_jobs: int
) -> List[Tuple[int, int]]:
    """Split ``n`` queries into contiguous ``(start, stop)`` chunks.

    The single planning code path shared by all backends.  ``chunk_size``
    wins when given (values ``>= n`` collapse to one chunk, ``1`` is legal);
    otherwise serial execution gets one chunk and parallel execution aims
    for ~4 chunks per worker so stragglers rebalance without drowning the
    run in per-task overhead.  Chunk boundaries never affect results or
    probe counters — only scheduling.
    """
    if n <= 0:
        return []
    if chunk_size is not None:
        size = max(1, int(chunk_size))
    elif n_jobs <= 1:
        size = n
    else:
        size = max(1, -(-n // (4 * n_jobs)))
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def metric_token(metric) -> Tuple[str, Any]:
    """A picklable reference to ``metric`` for worker processes.

    Registered (or name-materialisable, e.g. ``minkowski[p=3]``) metrics
    travel by name and are re-resolved in the worker; unregistered custom
    metrics travel as the :class:`~repro.geometry.distance.Metric` object
    itself, which pickles whenever its kernel functions are module-level.
    """
    m = get_metric(metric)
    try:
        get_metric(m.name)
    except KeyError:
        return ("obj", m)
    return ("name", m.name)


def metric_from_token(token: Tuple[str, Any]):
    kind, value = token
    return value if kind == "obj" else get_metric(value)


# ---------------------------------------------------------------------------
# Shared-memory packs
# ---------------------------------------------------------------------------

_ALIGN = 64  # cache-line alignment for each array inside a segment


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


class ShmPack:
    """Several named arrays published into one shared-memory segment.

    The publisher (the parent process) owns the segment: :meth:`close`
    unlinks it, and a :func:`weakref.finalize` guard unlinks it at garbage
    collection even if nobody calls :meth:`close`.  :attr:`handle` is the
    small picklable descriptor workers use to attach
    (:func:`attach_pack_views`).
    """

    def __init__(self, arrays: Dict[str, np.ndarray]):
        specs: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        offset = 0
        prepared: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            arr = np.ascontiguousarray(value)
            prepared[key] = arr
            offset = -(-offset // _ALIGN) * _ALIGN
            specs[key] = (arr.dtype.str, arr.shape, offset)
            offset += arr.nbytes
        name = f"{SHM_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, offset), name=name
        )
        for key, arr in prepared.items():
            dtype, shape, off = specs[key]
            view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=off)
            view[...] = arr
        #: (segment name, per-array (dtype, shape, offset)) — picklable.
        self.handle: Tuple[str, Dict[str, Tuple[str, Tuple[int, ...], int]]] = (
            name,
            specs,
        )
        self._finalizer = weakref.finalize(self, _destroy_segment, self._shm)
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_shm_publishes_total", "Shared-memory packs published"
            ).inc()
            obs_metrics.counter(
                "repro_shm_publish_bytes_total", "Bytes published into shared memory"
            ).inc(max(1, offset))

    @property
    def name(self) -> str:
        return self.handle[0]

    def close(self) -> None:
        """Unlink the segment (idempotent).  Workers already attached keep
        their mappings; new attaches fail, which is the point — a released
        pack must never serve another task."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive


# Worker-side cache of attached packs, keyed by segment name.  Names are
# unique per pack (uuid), so a cached entry can never alias a different
# pack; the cap bounds mapping growth across many runs/fits.  True LRU:
# hits refresh recency, so the fit-time pack — touched by every task —
# can never become the eviction victim while ephemeral run packs churn.
_ATTACHED: "OrderedDict[str, Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]]" = (
    OrderedDict()
)
_ATTACH_CAP = 16

#: Start method of the pool this worker belongs to (set by _worker_init).
_WORKER_START_METHOD: Optional[str] = None


def _worker_init(start_method: str) -> None:
    global _WORKER_START_METHOD
    _WORKER_START_METHOD = start_method


def attach_pack_views(handle) -> Dict[str, np.ndarray]:
    """Attach (or fetch from cache) the arrays behind a pack handle.

    Runs worker-side: under the process backend the attach counter lives in
    the *worker's* registry (inherited at fork), so the parent's
    ``/metrics`` only sees attaches made in-process.
    """
    if obs_runtime._ENABLED:
        obs_metrics.counter(
            "repro_shm_attaches_total", "Shared-memory pack attach calls (per process)"
        ).inc()
    name, specs = handle
    cached = _ATTACHED.get(name)
    if cached is not None:
        _ATTACHED.move_to_end(name)
        return cached[1]
    shm = shared_memory.SharedMemory(name=name)
    # The worker only *attaches* — the parent owns the segment's lifetime.
    # Forked workers share the parent's resource-tracker process, whose
    # per-name set dedupes the attach-time registration (the parent's
    # unlink balances it exactly — an extra unregister here would make the
    # tracker complain about a name it no longer knows).  Spawned workers
    # get a *private* tracker that would unlink the parent's segment at
    # worker exit, so there the attach-time registration must be undone.
    if _WORKER_START_METHOD != "fork":
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    views = {
        key: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        for key, (dtype, shape, off) in specs.items()
    }
    if len(_ATTACHED) >= _ATTACH_CAP:
        oldest = next(iter(_ATTACHED))
        old_shm, _ = _ATTACHED.pop(oldest)
        try:
            old_shm.close()
        except (OSError, BufferError):  # pragma: no cover - views still alive
            # A lingering external reference to the evicted views keeps the
            # mapping exported; dropping our handles is enough — the mmap is
            # reclaimed when the last view dies, and eviction must never
            # fail the task that triggered it.
            pass
    _ATTACHED[name] = (shm, views)
    return views


def detach_pack(name: str) -> bool:
    """Drop this process's cached attachment to segment ``name`` (if any).

    The attach cache above is LRU-bounded, which is enough for the
    ephemeral per-run packs of the parallel backend; long-lived *serving
    workers*, however, hold snapshot images for as long as a snapshot is
    live and are told explicitly when one is retired — this is that
    hygiene hook.  Returns True when an attachment was dropped.  Any views
    still referenced elsewhere keep the mapping alive (dropping the handle
    never invalidates them); once the last view dies the memory goes back
    to the OS even if the publisher already unlinked the segment name.
    """
    cached = _ATTACHED.pop(name, None)
    if cached is None:
        return False
    shm, _ = cached
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - views still alive
        pass
    return True


# ---------------------------------------------------------------------------
# Task execution
# ---------------------------------------------------------------------------


def _enact_payload_fault(payload) -> bool:
    """Obey an injected fault marker riding in the payload (chaos tests).

    The *parent* decides which chunks misbehave (so occurrence counting is
    deterministic, see :mod:`repro.faults`); the worker only enacts the
    marker.  Returns True when the result must be corrupted after its
    checksum is computed.
    """
    marker = payload.get("_fault")
    if not marker:
        return False
    mode = marker.get("mode")
    if mode == "sleep":
        time.sleep(float(marker.get("delay_s", 0.0)))
        return False
    if mode == "kill":
        if marker.get("hard"):  # a real process death, not an exception
            os._exit(13)
        raise WorkerCrashError("injected worker crash (parallel.worker)")
    if mode == "raise":
        raise InjectedFault("injected worker fault (parallel.worker)")
    return mode == "corrupt"


def _result_checksum(result: Dict[str, Any]) -> int:
    """CRC-32 over a task result's arrays (key + dtype + shape + bytes)."""
    crc = 0
    for key in sorted(result):
        crc = zlib.crc32(key.encode(), crc)
        value = result[key]
        if isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            crc = zlib.crc32(str(arr.dtype).encode(), crc)
            crc = zlib.crc32(repr(arr.shape).encode(), crc)
            crc = zlib.crc32(arr, crc)
        else:  # pragma: no cover - tasks currently return arrays only
            crc = zlib.crc32(repr(value).encode(), crc)
    return crc


def _corrupt_result(result: Dict[str, Any]) -> Dict[str, Any]:
    """Bit-flip one byte of one result array (after the checksum ran)."""
    corrupted = dict(result)
    for key in sorted(corrupted):
        value = corrupted[key]
        if isinstance(value, np.ndarray) and value.size:
            bad = np.ascontiguousarray(value).copy()
            bad.view(np.uint8).reshape(-1)[0] ^= 0xFF
            corrupted[key] = bad
            break
    return corrupted


def _run_with_stats(fn, arrays, meta, payload):
    corrupt = _enact_payload_fault(payload)
    stats = IndexStats()
    result = fn(arrays, meta, payload, stats)
    crc = _result_checksum(result)
    if corrupt:
        result = _corrupt_result(result)
    return result, stats.as_dict(), crc


def _worker_exec(fn, handles, meta, payload):
    """Process-pool entry point: resolve pack handles, run one chunk."""
    arrays: Dict[str, np.ndarray] = {}
    for handle in handles:
        arrays.update(attach_pack_views(handle))
    return _run_with_stats(fn, arrays, meta, payload)


def _accept_chunk(triple) -> Tuple[dict, Dict[str, int]]:
    """Verify a chunk's integrity checksum before its result is merged."""
    result, stats_delta, crc = triple
    if _result_checksum(result) != crc:
        raise ChunkIntegrityError(
            "worker chunk result failed its integrity checksum "
            "(payload corrupted in transit)"
        )
    return result, stats_delta


def _merge_stats(stats: IndexStats, delta: Dict[str, int]) -> None:
    for key, value in delta.items():
        setattr(stats, key, getattr(stats, key) + value)


_HEALTH_METRIC_HELP = {
    "chunk_failures": "Worker chunks that failed an attempt",
    "retries": "Backoff retry rounds over failed chunks",
    "pool_breaks": "Worker pools torn down after a BrokenExecutor",
}


def _observe_chunk_seconds(seconds: float) -> None:
    obs_metrics.histogram(
        "repro_parallel_chunk_seconds",
        "Per-chunk task latency (submit to settle)",
    ).observe(seconds)


class ExecutionBackend:
    """A configured execution policy plus its lazily created worker pool.

    One instance can be shared by several indexes (pass it as the
    ``backend=`` argument); the pool spins up on first use and is torn down
    by :meth:`shutdown` (or interpreter exit).  The object itself is
    stateless with respect to any particular index — fit-time shard packs
    belong to the index, per-run packs to the run.
    """

    def __init__(
        self,
        kind: str = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 1.0,
        retry_seed: int = 0,
    ):
        if kind not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {kind!r}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        self.kind = kind
        self.n_jobs = 1 if kind == "serial" else resolve_n_jobs(n_jobs)
        self.chunk_size = chunk_size
        #: Retry policy: how many backoff rounds each ladder rung gets
        #: before execution degrades to the next rung (process → threads →
        #: serial).  The jitter stream is seeded, so recovery timing — and
        #: therefore chaos tests — is reproducible.
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.retry_seed = int(retry_seed)
        self._pool = None
        self._pool_kind: Optional[str] = None
        self._degraded_kind: Optional[str] = None
        self._health_lock = threading.Lock()
        self._health = {
            "chunk_failures": 0,
            "retries": 0,
            "pool_breaks": 0,
            "degradations": 0,
        }
        self._last_error: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionBackend({self.kind!r}, n_jobs={self.n_jobs}, "
            f"chunk_size={self.chunk_size})"
        )

    # -- planning ------------------------------------------------------------

    def plan(self, n: int) -> List[Tuple[int, int]]:
        """Chunk boundaries for ``n`` queries under this policy."""
        return plan_chunks(n, self.chunk_size, self.n_jobs)

    # -- degradation / health --------------------------------------------------

    @property
    def effective_kind(self) -> str:
        """The rung runs start on: the configured kind, or the sticky
        degraded one after repeated failures."""
        return self._degraded_kind or self.kind

    @property
    def degraded(self) -> bool:
        return self._degraded_kind is not None

    def health(self) -> Dict[str, Any]:
        """Counters + degradation state for observability (JSON-friendly)."""
        with self._health_lock:
            snapshot = dict(self._health)
            last_error = self._last_error
        return {
            "kind": self.kind,
            "effective_kind": self.effective_kind,
            "degraded": self.degraded,
            "last_error": last_error,
            **snapshot,
        }

    def reset_degradation(self) -> None:
        """Return to the configured rung (after the operator fixed the cause)."""
        with self._health_lock:
            self._degraded_kind = None

    def _note(self, key: str, count: int, error: Optional[BaseException]) -> None:
        with self._health_lock:
            self._health[key] += count
            if error is not None:
                self._last_error = f"{type(error).__name__}: {error}"
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                f"repro_parallel_{key}_total",
                _HEALTH_METRIC_HELP.get(key, "Execution backend health events"),
            ).inc(count)

    def _degrade_to(self, kind: str, error: Optional[BaseException]) -> None:
        with self._health_lock:
            self._degraded_kind = kind
            self._health["degradations"] += 1
            if error is not None:
                self._last_error = f"{type(error).__name__}: {error}"
        if obs_runtime._ENABLED:
            obs_metrics.counter(
                "repro_parallel_degradations_total",
                "Ladder degradations (process -> threads -> serial)",
                ("to",),
            ).labels(kind).inc()
        self._teardown_pool(wait=False)

    # -- pool lifecycle --------------------------------------------------------

    def _ensure_pool(self, kind: str):
        if self._pool is not None and self._pool_kind != kind:
            self._teardown_pool(wait=False)
        if self._pool is None:
            if kind == "threads":
                self._pool = ThreadPoolExecutor(max_workers=self.n_jobs)
            elif kind == "process":
                # fork (where available) keeps pool start-up cheap and lets
                # workers inherit registered metrics; the shared-memory
                # protocol itself is start-method agnostic.
                methods = multiprocessing.get_all_start_methods()
                start_method = "fork" if "fork" in methods else methods[0]
                ctx = multiprocessing.get_context(start_method)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_jobs,
                    mp_context=ctx,
                    initializer=_worker_init,
                    initargs=(start_method,),
                )
            self._pool_kind = kind
        return self._pool

    def _teardown_pool(self, wait: bool) -> None:
        pool, self._pool, self._pool_kind = self._pool, None, None
        if pool is not None:
            try:
                pool.shutdown(wait=wait, cancel_futures=True)
            except Exception:  # pragma: no cover - a broken pool may object
                pass

    def shutdown(self) -> None:
        """Tear down the worker pool (a later run recreates it)."""
        self._teardown_pool(wait=True)


# -- the chunk supervisor -----------------------------------------------------


def _wave_outcomes(futures: "List[Future]") -> List[Tuple[bool, Any]]:
    """Settle every future; per-payload ``(ok, value_or_exception)``.

    No early cancel: in-flight chunks are awaited even after a failure, so
    nothing can touch a shared-memory pack the caller is about to free.
    """
    outcomes: List[Tuple[bool, Any]] = []
    for future in futures:
        try:
            outcomes.append((True, future.result()))
        except BaseException as exc:
            outcomes.append((False, exc))
    return outcomes


def _submit_timed(pool, fn, *args):
    """Submit one chunk; per-chunk latency is observed at settle time."""
    t0 = time.perf_counter()
    future = pool.submit(fn, *args)
    future.add_done_callback(
        lambda _f, _t0=t0: _observe_chunk_seconds(time.perf_counter() - _t0)
    )
    return future


def _run_wave_local(backend, kind, fn, arrays, meta, wave):
    """One attempt over in-process array references (serial/threads)."""
    record = obs_runtime._ENABLED
    if kind == "serial" or len(wave) <= 1:
        outcomes = []
        for payload in wave:
            t0 = time.perf_counter() if record else 0.0
            try:
                outcomes.append((True, _run_with_stats(fn, arrays, meta, payload)))
            except BaseException as exc:
                outcomes.append((False, exc))
            if record:
                _observe_chunk_seconds(time.perf_counter() - t0)
        return outcomes
    pool = backend._ensure_pool("threads")
    if record:
        futures = [_submit_timed(pool, _run_with_stats, fn, arrays, meta, p) for p in wave]
    else:
        futures = [pool.submit(_run_with_stats, fn, arrays, meta, p) for p in wave]
    return _wave_outcomes(futures)


def _run_wave_process(backend, fn, handles, meta, wave):
    """One attempt over shared-memory pack handles (process backend)."""
    pool = backend._ensure_pool("process")
    if obs_runtime._ENABLED:
        futures = [_submit_timed(pool, _worker_exec, fn, handles, meta, p) for p in wave]
    else:
        futures = [pool.submit(_worker_exec, fn, handles, meta, p) for p in wave]
    return _wave_outcomes(futures)


def _mark_injected_faults(wave: List[dict], kind: str) -> None:
    """Stamp chaos-plan fault markers onto this wave's payloads.

    Decisions happen here in the parent (deterministic occurrence
    counting); workers only enact the marker.  Stale markers from a
    previous attempt are cleared first — a retried chunk runs clean unless
    the plan trips again.
    """
    for payload in wave:
        payload.pop("_fault", None)
    if faults.active_plan() is None:
        return
    for payload in wave:
        spec = faults.decide("parallel.worker")
        if spec is not None:
            payload["_fault"] = {"mode": spec.mode, "hard": kind == "process"}
            continue
        spec = faults.decide("parallel.slow")
        if spec is not None:
            payload["_fault"] = {"mode": "sleep", "delay_s": spec.delay_s}
            continue
        spec = faults.decide("parallel.corrupt")
        if spec is not None:
            payload["_fault"] = {"mode": "corrupt"}


def run_index_tasks(
    index,
    fn: Callable,
    payloads: Sequence[dict],
    run_arrays: Optional[Dict[str, np.ndarray]] = None,
) -> List[dict]:
    """Execute one sharded kernel call for ``index``, fault-tolerantly.

    ``fn`` is a module-level task function ``fn(arrays, meta, payload,
    stats) -> dict`` (one of the ``*_task`` functions below).  ``arrays``
    unions the index's fit-time shard arrays (``index._shard_arrays()``)
    with the per-run ``run_arrays``; ``meta`` is the index's picklable
    ``_shard_meta()`` plus the metric token.  Under the process backend the
    fit arrays are published once per fit (and reused by every later call),
    the run arrays once per run; the run pack is unlinked in a ``finally``
    whatever happens to the chunks.

    Chunks that fail with a :data:`RETRYABLE_ERRORS` infrastructure fault
    (worker death, vanished shm segment, corrupted result, injected chaos
    fault) are retried with jittered exponential backoff; after
    ``backend.max_retries`` exhausted rounds the run degrades one ladder
    rung (``process → threads → serial``) and continues with only the
    still-failed chunks.  Results and probe counters are bit-identical on
    every rung; only *accepted* attempts' counters are merged, so a failed
    attempt never skews the totals.  Deterministic kernel errors propagate
    immediately with their original type and message.

    Returns the per-payload result dicts in payload order; each accepted
    task's counter deltas are folded into ``index._stats``.
    """
    backend: ExecutionBackend = index._execution()
    meta = dict(index._shard_meta())
    meta["metric"] = metric_token(index.metric)
    # Payloads are annotated (fault markers) per attempt — never mutate the
    # caller's dicts.
    payloads = [dict(p) for p in payloads]
    n_tasks = len(payloads)
    if n_tasks == 0:
        return []
    accepted: List[Optional[Tuple[dict, Dict[str, int]]]] = [None] * n_tasks
    pending = list(range(n_tasks))
    kind = backend.effective_kind
    retries_left = backend.max_retries
    attempt = 0
    jitter = random.Random(backend.retry_seed)
    local_arrays: Optional[Dict[str, np.ndarray]] = None
    run_pack: Optional[ShmPack] = None
    last_error: Optional[BaseException] = None
    run_span = obs_trace.begin_span("parallel.tasks", kind=kind, tasks=n_tasks)
    waves = 0

    def _local_arrays() -> Dict[str, np.ndarray]:
        nonlocal local_arrays
        if local_arrays is None:
            local_arrays = dict(index._shard_arrays())
            if run_arrays:
                local_arrays.update(run_arrays)
        return local_arrays

    try:
        while pending:
            wave = [payloads[i] for i in pending]
            _mark_injected_faults(wave, kind)
            waves += 1
            if obs_runtime._ENABLED:
                obs_metrics.counter(
                    "repro_parallel_tasks_total",
                    "Chunk tasks dispatched, by execution rung",
                    ("kind",),
                ).labels(kind).inc(len(wave))
            wave_span = obs_trace.begin_span(
                "parallel.wave", parent=run_span, kind=kind, tasks=len(wave)
            )
            if kind == "process":
                if index._shard_pack is None:
                    index._shard_pack = ShmPack(index._shard_arrays())
                handles = [index._shard_pack.handle]
                if run_arrays:
                    if run_pack is None or run_pack.closed:
                        run_pack = ShmPack(run_arrays)
                    handles.append(run_pack.handle)
                if faults.decide("parallel.shm_unlink") is not None:
                    # The injected unlink race: the run pack vanishes while
                    # this wave's tasks are still attaching.
                    if run_pack is not None:
                        run_pack.close()
                    else:
                        index._release_shards()
                outcomes = _run_wave_process(backend, fn, handles, meta, wave)
            else:
                outcomes = _run_wave_local(
                    backend, kind, fn, _local_arrays(), meta, wave
                )
            wave_span.finish()
            still_failed: List[int] = []
            pool_broken = False
            for task_index, (ok, value) in zip(pending, outcomes):
                if ok:
                    try:
                        accepted[task_index] = _accept_chunk(value)
                        continue
                    except ChunkIntegrityError as exc:
                        value = exc
                if isinstance(value, BrokenExecutor):
                    pool_broken = True
                if not isinstance(value, RETRYABLE_ERRORS):
                    raise value  # deterministic error: original type/message
                still_failed.append(task_index)
                last_error = value
            wave_span.set("failed", len(still_failed))
            if pool_broken:
                backend._note("pool_breaks", 1, last_error)
                backend._teardown_pool(wait=False)
            if not still_failed:
                break
            backend._note("chunk_failures", len(still_failed), last_error)
            pending = still_failed
            if retries_left > 0:
                retries_left -= 1
                backend._note("retries", 1, None)
                delay = min(
                    backend.backoff_max_s, backend.backoff_base_s * (2 ** attempt)
                )
                if delay > 0:
                    time.sleep(delay * (0.5 + jitter.random()))
                attempt += 1
            else:
                next_kind = DEGRADE_TO[kind]
                if next_kind is None:
                    raise last_error
                backend._degrade_to(next_kind, last_error)
                kind = next_kind
                retries_left = backend.max_retries
                attempt = 0
    finally:
        run_span.set("waves", waves)
        run_span.set("final_kind", kind)
        run_span.finish()
        if run_pack is not None:
            run_pack.close()
    results = []
    for entry in accepted:
        result, stats_delta = entry
        _merge_stats(index._stats, stats_delta)
        results.append(result)
    return results


# ---------------------------------------------------------------------------
# Task functions (module-level: picklable by reference)
# ---------------------------------------------------------------------------
#
# Every task reads its inputs from `arrays` (fit pack ∪ run pack), static
# facts from `meta`, chunk coordinates from `payload`, and accumulates probe
# counters into the fresh `stats` it was handed.  Payloads carry only plain
# scalars, so a task pickles in a few dozen bytes.


def list_rho_task(arrays, meta, payload, stats):
    """Row-sharded N-List ρ: one batched binary search per chunk row.

    ``needles`` is a scalar ``dc`` or a list of them (the multi-``dc``
    grid); the result rows are chunk-local and re-assembled by the caller.
    """
    start, stop = payload["start"], payload["stop"]
    n, m = meta["n"], meta["row_len"]
    rows = arrays["dists"].reshape(n, m)[start:stop]
    needles = payload["needles"]
    if isinstance(needles, (list, tuple)):
        pos = row_searchsorted(rows, np.asarray(needles, dtype=np.float64)[None, :])
    else:
        pos = row_searchsorted(rows, float(needles))
    stats.binary_searches += pos.size
    return {"rho": pos}


def csr_rho_task(arrays, meta, payload, stats):
    """Row-sharded RN-List ρ: bounded binary searches over CSR rows."""
    start, stop = payload["start"], payload["stop"]
    offsets = arrays["offsets"]
    needles = payload["needles"]
    if isinstance(needles, (list, tuple)):
        grid = np.asarray(needles, dtype=np.float64)
        pos = bounded_searchsorted(
            arrays["dists"],
            offsets[start:stop, None],
            offsets[start + 1 : stop + 1, None],
            grid[None, :],
        )
        rho = pos - offsets[start:stop, None]
        stats.binary_searches += (stop - start) * len(grid)
    else:
        pos = bounded_searchsorted(
            arrays["dists"],
            offsets[start:stop],
            offsets[start + 1 : stop + 1],
            float(needles),
        )
        rho = pos - offsets[start:stop]
        stats.binary_searches += stop - start
    return {"rho": rho}


def ch_rho_task(arrays, meta, payload, stats):
    """Row-sharded CH ρ (Algorithm 4) over the histogram CSR slice.

    ``max_bins`` pins the bin resolution to the whole table's largest
    histogram so the chunk resolves exactly the bin the unsharded call
    would (see :func:`repro.indexes.kernels.ch_rho_from_histograms`).
    """
    start, stop = payload["start"], payload["stop"]
    offsets = arrays["offsets"]
    rho, scanned, searches = ch_rho_from_histograms(
        arrays["hist_offsets"][start : stop + 1],
        arrays["hist_values"],
        arrays["dists"].reshape(-1),
        offsets[start:stop],
        payload["dc"],
        payload["w"],
        max_bins=payload["max_bins"],
    )
    stats.objects_scanned += scanned
    stats.binary_searches += searches
    return {"rho": rho}


def scan_delta_task(arrays, meta, payload, stats):
    """Row-sharded near-to-far δ scans over N-List / RN-List CSR rows.

    One task covers rows ``[start, stop)`` for *every* density order of the
    sweep (rows of ``arrays["keys"]``): the candidate layout — and hence
    the prefetch block — is ``dc``-independent, so gathering it once per
    chunk and reusing it across all orders keeps the seed sweep's
    gather-once economics while the chunks carry the parallelism.
    Returns ``(n_orders, stop - start)`` result rows.
    """
    start, stop = payload["start"], payload["stop"]
    keys = arrays["keys"]
    offsets = arrays["offsets"][start : stop + 1]
    ids = arrays["ids"].reshape(-1)
    dists = arrays["dists"].reshape(-1)
    qid = np.arange(start, stop, dtype=np.int64)
    prefetch = None
    width = payload["prefetch_width"]
    if width:
        prefetch = prefetch_scan_block(offsets, ids, dists, width)
    deltas, mus = [], []
    for key in keys:
        delta, mu, _resolved, scanned = scan_first_denser(
            offsets, ids, dists, key, block=payload["block"], prefetch=prefetch, qid=qid
        )
        stats.objects_scanned += scanned
        deltas.append(delta)
        mus.append(mu)
    return {"delta": np.stack(deltas), "mu": np.stack(mus)}


def _flat_from_arrays(arrays, meta) -> FlatTree:
    return FlatTree.from_arrays(arrays, meta["levels"], meta["n_nodes"])


def tree_rho_task(arrays, meta, payload, stats):
    """Query-sharded Algorithm 5 over the shared flattened tree image."""
    start, stop = payload["start"], payload["stop"]
    counts = tree_rho_batched(
        _flat_from_arrays(arrays, meta),
        arrays["points"],
        payload["dc"],
        metric_from_token(meta["metric"]),
        stats,
        qid=np.arange(start, stop, dtype=np.int64),
    )
    return {"rho": counts}


def tree_delta_task(arrays, meta, payload, stats):
    """One ``(order, chunk)`` cell of the sharded frontier-batched δ engine.

    ``arrays["qid"]`` holds the sweep's concatenated non-peak query ids
    (per-order segments contiguous); the chunk covers absolute positions
    ``[a, b)`` of it, all belonging to order ``payload["order"]``.
    """
    a, b, o = payload["a"], payload["b"], payload["order"]
    qid = arrays["qid"][a:b]
    delta, mu = tree_delta_batched(
        _flat_from_arrays(arrays, meta),
        arrays["points"],
        qid,
        np.zeros(len(qid), dtype=np.int64),
        arrays["rho_rows"][o : o + 1],
        arrays["key_rows"][o : o + 1],
        metric_from_token(meta["metric"]),
        stats,
        density_pruning=meta["density_pruning"],
        distance_pruning=meta["distance_pruning"],
        maxrho=arrays["maxrho"][o : o + 1],
    )
    return {"delta": delta, "mu": mu}


def grid_rho_task(arrays, meta, payload, stats):
    """Cell-locality-sharded Observation-1 ρ over the shared grid arrays.

    The chunk is a slice of the *cell-sorted* id array, so each task walks
    a contiguous run of home cells instead of re-sweeping every occupied
    cell; the caller scatters the counts back into object-id order.
    """
    start, stop = payload["start"], payload["stop"]
    qid = arrays["ids"][start:stop]
    counts = grid_rho_batched(
        arrays["points"],
        qid,
        payload["dc"],
        meta["w"],
        arrays["grid_lo"],
        tuple(meta["shape"]),
        arrays["offsets"],
        arrays["ids"],
        arrays["cell_of"],
        metric_from_token(meta["metric"]),
        stats,
    )
    return {"rho": counts}


def grid_delta_task(arrays, meta, payload, stats):
    """One ``(order, chunk)`` cell of the sharded expanding-ring δ engine."""
    a, b, o = payload["a"], payload["b"], payload["order"]
    qid = arrays["qid"][a:b]
    delta, mu = grid_delta_batched(
        arrays["points"],
        qid,
        np.zeros(len(qid), dtype=np.int64),
        arrays["rho_rows"][o : o + 1],
        arrays["key_rows"][o : o + 1],
        arrays["cell_maxrho"][o : o + 1],
        arrays["offsets"],
        arrays["ids"],
        arrays["cell_of"],
        arrays["grid_lo"],
        meta["w"],
        tuple(meta["shape"]),
        metric_from_token(meta["metric"]),
        stats,
    )
    return {"delta": delta, "mu": mu}
