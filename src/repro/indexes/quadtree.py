"""Quadtree index for DPC — paper Section 4.1.

A PR (point-region) quadtree over 2-D space: each internal node splits its
square region into four equal quadrants; a node splits when it holds more
than ``capacity`` objects.  As the paper notes, the shape follows the *data
distribution* — skewed data can make the tree deep and unbalanced, which is
exactly the weakness the R-tree comparison (Section 4.2) targets.

Construction defaults to the Morton-key bulk builder
(:func:`repro.indexes.build.bulk_build_quadtree`): every point's full
quadrant path is derived in one vectorised pass and a single sort groups
all tree levels at once, producing the flattened query image directly.  The
recursive mask-partition build (equivalent to the paper's repeated
insertion) is kept as the ``build="objects"`` reference.  ``nc`` is filled
during construction; ``maxrho`` is annotated per clustering run by the
shared machinery in :mod:`repro.indexes.treebase`, which also provides the
Algorithm 5/6 queries.
"""

from __future__ import annotations

from typing import ClassVar, Optional

import numpy as np

from repro.geometry.distance import Metric
from repro.indexes.build import (
    _padded_box,
    bulk_build_quadtree,
    merge_morton_runs,
    morton_keys,
)
from repro.indexes.treebase import TreeIndexBase, TreeNode

__all__ = ["QuadtreeIndex"]


class QuadtreeIndex(TreeIndexBase):
    """PR quadtree (2-D only, like the paper's).

    Parameters
    ----------
    capacity:
        Maximum objects in a leaf before it splits.
    max_depth:
        Hard recursion cap; duplicate-heavy data would otherwise split
        forever (the paper's worst case "height may become linear").
    build:
        ``"bulk"`` (default) derives every point's full quadrant path in a
        single Morton-key pass (:func:`repro.indexes.build.bulk_build_quadtree`);
        ``"objects"`` is the recursive mask-partition reference.  Quadrant
        boundaries may differ by ulps between the two (grid arithmetic vs
        repeated midpoint averaging), a legitimate shape difference —
        results are bit-identical either way.  ``max_depth > 32`` exceeds
        the Morton key and falls back to the object path.
    """

    name: ClassVar[str] = "quadtree"
    required_ndim: ClassVar[Optional[int]] = 2

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        capacity: int = 32,
        max_depth: int = 32,
        density_pruning: bool = True,
        distance_pruning: bool = True,
        frontier: str = "batched",
        build: str = "bulk",
        backend: str = "serial",
        n_jobs: "int | None" = None,
        chunk_size: "int | None" = None,
    ):
        super().__init__(
            metric, density_pruning, distance_pruning, frontier, build,
            backend=backend, n_jobs=n_jobs, chunk_size=chunk_size,
        )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.capacity = capacity
        self.max_depth = max_depth

    def _bulk_build(self):
        state: dict = {}
        flat = bulk_build_quadtree(
            self.points, self.capacity, self.max_depth, state_out=state
        )
        # Sorted Morton run of this fit, for delta compaction by merge.
        self._morton_state = state if flat is not None else None
        return flat

    def _delta_image(self, pts):
        return bulk_build_quadtree(pts, self.capacity, self.max_depth)

    def _merge_delta_image(self):
        state = getattr(self, "_morton_state", None)
        if not state or len(state["order"]) != self._base_n:
            return None  # no fit-time run (e.g. loaded payload): fresh build
        box_lo, box_hi = state["box"]
        new_lo, new_hi = _padded_box(self.points)
        if not (np.array_equal(box_lo, new_lo) and np.array_equal(box_hi, new_hi)):
            return None  # delta points moved the root box: keys incomparable
        delta_keys = morton_keys(
            self.points[self._base_n :], box_lo, box_hi, self.max_depth
        )
        if delta_keys is None:
            return None
        presorted = merge_morton_runs(
            state["keys"], state["order"], delta_keys, self._base_n
        )
        out: dict = {}
        flat = bulk_build_quadtree(
            self.points, self.capacity, self.max_depth,
            presorted=presorted, state_out=out,
        )
        self._morton_state = out if flat is not None else None
        return flat

    def _build_objects(self) -> TreeNode:
        points = self.points
        # A zero-extent axis (all points collinear) still needs a box with
        # positive area for quadrant splitting; inflate degenerate sides
        # (shared with the bulk builder so both decompose the same region).
        lo, hi = _padded_box(points)
        ids = np.arange(len(points), dtype=np.int64)
        return self._build_node(ids, lo, hi, depth=0)

    def _build_node(
        self, ids: np.ndarray, lo: np.ndarray, hi: np.ndarray, depth: int
    ) -> TreeNode:
        if len(ids) <= self.capacity or depth >= self.max_depth:
            return TreeNode(lo, hi, ids=ids)
        pts = self.points[ids]
        cx, cy = (lo + hi) / 2.0
        east = pts[:, 0] >= cx  # boundary points go to the high-side quadrant
        north = pts[:, 1] >= cy
        children = []
        quadrant_boxes = (
            (np.array([lo[0], lo[1]]), np.array([cx, cy]), ~east & ~north),  # SW
            (np.array([cx, lo[1]]), np.array([hi[0], cy]), east & ~north),  # SE
            (np.array([lo[0], cy]), np.array([cx, hi[1]]), ~east & north),  # NW
            (np.array([cx, cy]), np.array([hi[0], hi[1]]), east & north),  # NE
        )
        for qlo, qhi, mask in quadrant_boxes:
            sub = ids[mask]
            if len(sub) == 0:
                continue  # empty quadrants are not materialised
            children.append(self._build_node(sub, qlo, qhi, depth + 1))
        node = TreeNode(lo, hi, children=children)
        return node
