"""Common contract for every DPC index.

An index is built **once** over a point set and then answers the two DPC
queries for **any** ``dc`` (the whole point of the paper: users try many
``dc`` values, so ρ/δ must be cheap per run):

* ``rho_all(dc)`` — local densities of every object;
* ``delta_all(order)`` — dependent distances + nearest denser neighbours,
  given the :class:`~repro.core.quantities.DensityOrder` derived from ρ.

``quantities(dc)`` is the template method that chains the two, and
``cluster(dc, ...)`` runs steps 3–4 (centre selection + assignment) on top.
The multi-``dc`` sweep variants — ``rho_all_multi``, ``quantities_multi``
and ``cluster_multi`` — evaluate a whole grid of cut-offs against the one
built structure; the base implementations loop, and the list-family indexes
override ``rho_all_multi``/``quantities_multi`` with batched kernels
(:mod:`repro.indexes.kernels`).

Every index also exposes:

* ``memory_bytes()`` — the storage footprint (Table 3 of the paper);
* ``stats()`` — probe counters (distance evaluations, node visits, objects
  scanned, prunes) so the complexity claims of Theorems 1–4 can be tested
  without wall-clock timing;
* ``build_seconds`` — construction time (Table 4).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.core.assignment import assign_labels
from repro.core.decision import (
    select_centers_auto,
    select_centers_threshold,
    select_centers_top_k,
)
from repro.core.halo import halo_mask
from repro.core.quantities import (
    DensityOrder,
    DPCQuantities,
    DPCResult,
    TieBreak,
)
from repro.geometry.distance import Metric, get_metric
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace

__all__ = ["IndexStats", "DPCIndex"]


def _observe_phase(phase: str, sp) -> None:
    """Fold one finished phase span into the shared phase histogram."""
    obs_metrics.histogram(
        "repro_engine_phase_seconds",
        "Engine phase latency (rho / delta / assign)",
        ("phase",),
    ).labels(phase).observe(sp.duration_ns / 1e9)


@dataclass
class IndexStats:
    """Probe counters accumulated across queries since the last reset.

    These are *logical* work measures, independent of Python overhead:

    * ``distance_evals`` — point-to-point distance computations;
    * ``objects_scanned`` — list entries or leaf objects examined;
    * ``nodes_visited`` — tree/grid nodes popped or recursed into;
    * ``nodes_pruned_density`` — nodes skipped by Lemma 1 (maxrho);
    * ``nodes_pruned_distance`` — nodes skipped by Lemma 2 (dmin ≥ δ);
    * ``nodes_contained`` — nodes fully inside the query circle
      (Observation 1) whose count was added wholesale;
    * ``binary_searches`` — N-List binary searches performed.
    """

    distance_evals: int = 0
    objects_scanned: int = 0
    nodes_visited: int = 0
    nodes_pruned_density: int = 0
    nodes_pruned_distance: int = 0
    nodes_contained: int = 0
    binary_searches: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_work(self) -> int:
        """A single scalar proxy for query effort."""
        return (
            self.distance_evals
            + self.objects_scanned
            + self.nodes_visited
            + self.binary_searches
        )


class DPCIndex(abc.ABC):
    """Abstract base class for all DPC indexes.

    Subclasses implement ``_build``, ``rho_all`` and ``delta_all``; the
    lifecycle, validation, timing and the high-level ``quantities`` /
    ``cluster`` orchestration live here.

    Usage::

        index = ListIndex().fit(points)
        result = index.cluster(dc=0.25, n_centers=15)
    """

    #: Registry name; subclasses override.
    name: ClassVar[str] = "abstract"
    #: Whether ρ/δ are exact for every ``dc`` (False for the τ-truncated ones).
    exact: ClassVar[bool] = True
    #: Required dimensionality (None = any).
    required_ndim: ClassVar[Optional[int]] = None

    def __init__(
        self,
        metric: "str | Metric" = "euclidean",
        backend: "str | Any" = "serial",
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ):
        self.metric = get_metric(metric)
        self.points: Optional[np.ndarray] = None
        self.build_seconds: float = float("nan")
        self._stats = IndexStats()
        # Execution policy (repro.indexes.parallel): how the batched ρ/δ
        # kernels are sharded over query chunks.  `backend` is a kind name
        # ("serial" | "threads" | "process") or a shared ExecutionBackend
        # instance; results are bit-identical across all of them.  Runtime
        # configuration only — never serialised with the index (persist.py).
        self.backend = backend
        self.n_jobs = n_jobs
        self.chunk_size = chunk_size
        self._execution_ = None  # resolved ExecutionBackend (lazy)
        self._shard_pack = None  # published fit-time shared-memory pack
        self._fingerprint_ = None  # cached content fingerprint (lazy)
        self._validate_backend(backend)

    @staticmethod
    def _validate_backend(backend) -> None:
        from repro.indexes.parallel import BACKENDS, ExecutionBackend

        if not isinstance(backend, ExecutionBackend) and backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS} or an ExecutionBackend, "
                f"got {backend!r}"
            )

    # -- lifecycle ----------------------------------------------------------

    def fit(self, points: np.ndarray) -> "DPCIndex":
        """Validate ``points``, build the index, record construction time.

        Re-fitting starts a fresh measurement epoch: the probe counters are
        reset so Theorem 1–4 complexity checks never mix work from a
        previous dataset.  Any published shard state (shared-memory image,
        chunk plans) from a previous fit is invalidated first — workers must
        never see a stale index image for the new dataset.
        """
        self._release_shards()
        self._fingerprint_ = None  # new data ⇒ new identity for result caches
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError(
                f"points must be a non-empty (n, d) array, got shape {points.shape}"
            )
        if self.required_ndim is not None and points.shape[1] != self.required_ndim:
            raise ValueError(
                f"{type(self).__name__} requires {self.required_ndim}-D points, "
                f"got {points.shape[1]}-D"
            )
        self._stats.reset()
        self.points = points
        start = time.perf_counter()
        self._build()
        self.build_seconds = time.perf_counter() - start
        return self

    @property
    def is_fitted(self) -> bool:
        return self.points is not None

    def _require_fitted(self) -> np.ndarray:
        if self.points is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted; call fit(points) first")
        return self.points

    @property
    def n(self) -> int:
        return len(self._require_fitted())

    def fingerprint(self) -> str:
        """Stable content fingerprint of this fitted index (cached).

        Delegates to :func:`repro.indexes.persist.index_fingerprint`: a
        SHA-256 over the index family, constructor + fit-resolved params and
        the exact point bytes.  Equal fingerprints ⇒ bit-identical answers
        to every query, which is what the serving result cache keys on.
        The cache is cleared by :meth:`fit`, so a refit on new data can
        never be mistaken for the old snapshot.
        """
        self._require_fitted()
        if self._fingerprint_ is None:
            from repro.indexes.persist import index_fingerprint

            self._fingerprint_ = index_fingerprint(self)
        return self._fingerprint_

    # -- incremental maintenance (LSM-style delta segments) --------------------

    def add_points(self, new_points: np.ndarray) -> "DPCIndex":
        """Append ``new_points`` to the fitted index without a full rebuild.

        Families with a delta-segment implementation (:meth:`_append`)
        ingest the batch into a small sorted side image that queries merge
        with the frozen base image at kernel time — answers stay
        bit-identical to a fresh fit over the combined points.  Families
        without one fall back to a full refit over the combined array, which
        preserves exactness trivially.

        Published shard state and the cached fingerprint are invalidated:
        an index with more points is new content.  The base image arrays are
        never mutated in place (delta ingest rebinds attributes), so a
        :meth:`snapshot_copy` taken earlier keeps answering for its own
        point-in-time content.
        """
        self._require_fitted()
        new_points = np.ascontiguousarray(np.atleast_2d(new_points), dtype=np.float64)
        if new_points.ndim != 2 or len(new_points) == 0:
            raise ValueError(
                f"new_points must be a non-empty (k, d) array, got shape {new_points.shape}"
            )
        if new_points.shape[1] != self.points.shape[1]:
            raise ValueError(
                f"dimension mismatch: index holds {self.points.shape[1]}-D points, "
                f"got {new_points.shape[1]}-D"
            )
        self._release_shards()
        self._fingerprint_ = None
        self._append(new_points)
        return self

    def _append(self, new_points: np.ndarray) -> None:
        """Family hook for delta-segment ingest; the default is a full refit."""
        self.fit(np.concatenate([self.points, new_points]))

    @property
    def delta_size(self) -> int:
        """Points currently held in the delta segment (0 = fully compacted)."""
        return 0

    @property
    def has_delta(self) -> bool:
        return self.delta_size > 0

    def compact(self) -> "DPCIndex":
        """Fold the delta segment into the main image (no-op without one).

        The post-compaction image is bit-identical to a fresh fit over the
        combined points: families merge sorted base/delta orders where the
        build permits it and fall back to a fresh bulk build otherwise.
        """
        if self.delta_size:
            self._release_shards()
            self._fingerprint_ = None
            self._compact()
        return self

    def _compact(self) -> None:
        """Family hook folding the delta segment; only called with one present."""
        self.fit(self.points)

    def _segment_lengths(self) -> Tuple[int, ...]:
        """Segment layout ``(base_n, delta_n, ...)`` for the fingerprint recipe."""
        delta = self.delta_size
        return (self.n - delta, delta) if delta else (self.n,)

    def snapshot_copy(self) -> "DPCIndex":
        """A cheap, independently publishable copy of this fitted index.

        The copy shares the (immutable) base arrays but owns its stats,
        shard state and fingerprint cache.  Because delta ingest and
        compaction rebind attributes instead of mutating arrays in place,
        the copy keeps answering for the content it was taken at while the
        original continues to evolve — this is what :class:`StreamingDPC`
        hands to snapshot subscribers.
        """
        import copy

        self._require_fitted()
        clone = copy.copy(self)
        clone._stats = IndexStats()
        clone._shard_pack = None
        clone._execution_ = None
        clone._fingerprint_ = None
        return clone

    # -- subclass responsibilities -------------------------------------------

    @abc.abstractmethod
    def _build(self) -> None:
        """Construct the index over ``self.points``."""

    @abc.abstractmethod
    def rho_all(self, dc: float) -> np.ndarray:
        """Local density of every object for cut-off ``dc`` (int64)."""

    @abc.abstractmethod
    def delta_all(self, order: DensityOrder) -> Tuple[np.ndarray, np.ndarray]:
        """Dependent distance δ and nearest denser neighbour μ for every
        object, under the density ordering ``order``.

        Returns ``(delta, mu)``; ``mu`` uses
        :data:`~repro.core.quantities.NO_NEIGHBOR` for objects with no denser
        neighbour (see the tie-break discussion in
        :mod:`repro.core.quantities`).
        """

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate resident size of the index structures, in bytes."""

    # -- template methods ------------------------------------------------------

    def quantities(
        self, dc: float, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> DPCQuantities:
        """Compute the full (ρ, δ, μ) triple for ``dc`` (steps 1–2)."""
        self._require_fitted()
        if dc <= 0:
            raise ValueError(f"dc must be positive, got {dc}")
        probes_before = self._probe_snapshot()
        with obs_trace.span("engine.quantities", dc=float(dc)):
            with obs_trace.span("engine.rho") as sp_rho:
                rho = self.rho_all(float(dc))
            order = DensityOrder(rho, tie_break)
            with obs_trace.span("engine.delta") as sp_delta:
                delta, mu = self.delta_all(order)
        if obs_runtime._ENABLED:
            _observe_phase("rho", sp_rho)
            _observe_phase("delta", sp_delta)
            self._emit_probe_delta(probes_before)
        return DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)

    # -- multi-dc sweeps ---------------------------------------------------------

    @staticmethod
    def _validate_dcs(dcs) -> np.ndarray:
        dcs = np.asarray(list(dcs), dtype=np.float64)
        if dcs.ndim != 1 or len(dcs) == 0:
            raise ValueError(f"dcs must be a non-empty 1-D sequence, got shape {dcs.shape}")
        if (dcs <= 0).any():
            raise ValueError(f"every dc must be positive, got {dcs.min()}")
        return dcs

    def rho_all_multi(self, dcs) -> np.ndarray:
        """Local densities for a whole grid of cut-offs; ``(len(dcs), n)``.

        Row ``i`` equals ``rho_all(dcs[i])`` exactly.  The base class loops;
        list-family indexes override this with one batched kernel call.
        """
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        return np.stack([self.rho_all(float(dc)) for dc in dcs])

    def delta_all_multi(self, orders) -> "list[Tuple[np.ndarray, np.ndarray]]":
        """``delta_all`` for a sequence of density orders, in input order.

        Element ``i`` equals ``delta_all(orders[i])`` exactly.  The base
        class loops; the tree-family and grid indexes override this with one
        batched-engine traversal shared by the whole sweep
        (:mod:`repro.indexes.kernels`).
        """
        self._require_fitted()
        return [self.delta_all(order) for order in orders]

    def quantities_multi(
        self, dcs, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> "list[DPCQuantities]":
        """The (ρ, δ, μ) triples for every ``dc`` in ``dcs``, in input order.

        The whole point of the paper's index-once workflow: one built
        structure amortised over a ``dc`` sensitivity sweep.  Element ``i``
        agrees element-wise with ``quantities(dcs[i], tie_break)``.
        """
        self._require_fitted()
        dcs = self._validate_dcs(dcs)
        probes_before = self._probe_snapshot()
        with obs_trace.span("engine.quantities", dcs=len(dcs)):
            result = self._quantities_multi_impl(dcs, tie_break)
        if obs_runtime._ENABLED:
            self._emit_probe_delta(probes_before)
        return result

    def _quantities_multi_impl(
        self, dcs: np.ndarray, tie_break: "str | TieBreak"
    ) -> "list[DPCQuantities]":
        """The sweep computation behind :meth:`quantities_multi`.

        Subclasses with a fused sweep kernel override *this* hook (not the
        public method) so validation, tracing, and probe accounting stay in
        one place.  ``dcs`` arrives already validated as a float64 array.
        """
        with obs_trace.span("engine.rho") as sp_rho:
            rhos = self.rho_all_multi(dcs)
        orders = [DensityOrder(rho, tie_break) for rho in rhos]
        with obs_trace.span("engine.delta") as sp_delta:
            deltas = self.delta_all_multi(orders)
        if obs_runtime._ENABLED:
            _observe_phase("rho", sp_rho)
            _observe_phase("delta", sp_delta)
        return [
            DPCQuantities(dc=float(dc), rho=rho, delta=delta, mu=mu, density_order=order)
            for dc, rho, order, (delta, mu) in zip(dcs, rhos, orders, deltas)
        ]

    def cluster_multi(
        self,
        dcs,
        n_centers: Optional[int] = None,
        rho_min: Optional[float] = None,
        delta_min: Optional[float] = None,
        tie_break: "str | TieBreak" = TieBreak.ID,
        halo: bool = False,
    ) -> "list[DPCResult]":
        """Full DPC runs for every ``dc`` in ``dcs`` over the one index."""
        qs = self.quantities_multi(dcs, tie_break)
        return [self._finish_cluster(q, n_centers, rho_min, delta_min, halo) for q in qs]

    def cluster(
        self,
        dc: float,
        n_centers: Optional[int] = None,
        rho_min: Optional[float] = None,
        delta_min: Optional[float] = None,
        tie_break: "str | TieBreak" = TieBreak.ID,
        halo: bool = False,
    ) -> DPCResult:
        """Full DPC run: quantities, centre selection, assignment (+ halo).

        Exactly one selection mode applies: ``n_centers`` (top-k by γ),
        both ``rho_min`` and ``delta_min`` (decision-graph thresholds), or
        neither (automatic largest-γ-gap heuristic).
        """
        self._require_fitted()
        q = self.quantities(dc, tie_break)
        return self._finish_cluster(q, n_centers, rho_min, delta_min, halo)

    def cluster_from_quantities(
        self,
        q: DPCQuantities,
        n_centers: Optional[int] = None,
        rho_min: Optional[float] = None,
        delta_min: Optional[float] = None,
        halo: bool = False,
    ) -> DPCResult:
        """Steps 3–4 (centre selection + assignment + halo) on precomputed
        quantities.

        ``cluster(dc, ...)`` is exactly ``quantities(dc)`` followed by this,
        so a caller holding a cached :class:`DPCQuantities` (the serving
        layer, a coalesced batch answering several selection configs for one
        ``dc``) reproduces ``cluster`` bit-for-bit without re-running ρ/δ.
        ``q`` must come from this index's data: the assignment and halo
        steps read ``self.points``.
        """
        self._require_fitted()
        if len(q) != self.n:
            raise ValueError(
                f"quantities are for {len(q)} objects but the index holds {self.n}"
            )
        return self._finish_cluster(q, n_centers, rho_min, delta_min, halo)

    def _finish_cluster(
        self,
        q: DPCQuantities,
        n_centers: Optional[int],
        rho_min: Optional[float],
        delta_min: Optional[float],
        halo: bool,
    ) -> DPCResult:
        """Steps 3–4 (centre selection + assignment + halo) from quantities."""
        points = self._require_fitted()
        if n_centers is not None and (rho_min is not None or delta_min is not None):
            raise ValueError("pass either n_centers or rho_min/delta_min, not both")
        with obs_trace.span("engine.assign", dc=float(q.dc)) as sp:
            if n_centers is not None:
                centers = select_centers_top_k(q, n_centers)
            elif rho_min is not None or delta_min is not None:
                if rho_min is None or delta_min is None:
                    raise ValueError("rho_min and delta_min must be given together")
                centers = select_centers_threshold(q, rho_min, delta_min)
            else:
                centers = select_centers_auto(q)
            labels = assign_labels(q, centers, points=points, metric=self.metric)
            result = DPCResult(quantities=q, centers=centers, labels=labels)
            if halo:
                result.halo = halo_mask(points, labels, q.rho, q.dc, metric=self.metric)
        if obs_runtime._ENABLED:
            _observe_phase("assign", sp)
        return result

    def partitioned(
        self,
        partitions: int,
        halo: Optional[float] = None,
        scheme: str = "morton",
    ) -> "DPCIndex":
        """A partitioned (dataset-sharded) index over this family + params.

        Returns an *unfitted* :class:`~repro.indexes.partition.PartitionedIndex`
        configured with this index's family, constructor parameters, metric
        and execution knobs — the scale-out entry point:
        ``RTreeIndex(max_entries=8).partitioned(4).fit(points)`` answers
        every query bit-identically to the unpartitioned fit.
        """
        from repro.indexes.partition import PartitionedIndex
        from repro.indexes.persist import _constructor_params

        family_params = _constructor_params(self)
        family_params.pop("metric", None)
        return PartitionedIndex(
            metric=self.metric,
            family=self.name,
            partitions=partitions,
            halo=halo,
            scheme=scheme,
            family_params=family_params,
            backend=self.backend,
            n_jobs=self.n_jobs,
            chunk_size=self.chunk_size,
        )

    # -- execution backend (repro.indexes.parallel) -------------------------------

    def _execution(self):
        """The resolved :class:`~repro.indexes.parallel.ExecutionBackend`."""
        from repro.indexes.parallel import ExecutionBackend

        if self._execution_ is None:
            if isinstance(self.backend, ExecutionBackend):
                self._execution_ = self.backend
            else:
                self._execution_ = ExecutionBackend(
                    self.backend, n_jobs=self.n_jobs, chunk_size=self.chunk_size
                )
        return self._execution_

    def set_execution(
        self,
        backend: "str | Any | None" = None,
        n_jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> "DPCIndex":
        """Reconfigure how queries are sharded, without re-fitting.

        Any published shard state and a previously owned worker pool are
        released; fitted structures (and therefore results) are untouched —
        results are bit-identical across backends by contract.
        """
        if backend is not None:
            self._validate_backend(backend)
        # Release BEFORE reassigning: the ownership check inside
        # release_execution compares against the *old* self.backend —
        # reassigning first would make a shared pool look index-owned and
        # shut it down under the other indexes using it.
        self.release_execution()
        if backend is not None:
            self.backend = backend
        if n_jobs is not None:
            self.n_jobs = n_jobs
        if chunk_size is not None:
            self.chunk_size = chunk_size
        return self

    def _release_shards(self) -> None:
        """Unlink this fit's shared-memory image (chunk plans die with it)."""
        if self._shard_pack is not None:
            self._shard_pack.close()
            self._shard_pack = None

    def release_execution(self) -> None:
        """Release shard state and shut down an index-owned worker pool.

        A pool passed in as a shared ``ExecutionBackend`` instance is left
        running (other indexes may be using it).  Idempotent; queries after
        a release lazily recreate whatever they need.
        """
        self._release_shards()
        if self._execution_ is not None:
            if self._execution_ is not self.backend:
                self._execution_.shutdown()
            self._execution_ = None

    def execution_health(self) -> Optional[Dict[str, Any]]:
        """Retry/degradation counters of the resolved execution backend.

        ``None`` until a query first resolves the backend; afterwards the
        :meth:`~repro.indexes.parallel.ExecutionBackend.health` dict —
        configured vs effective rung, retry/pool-break/degradation counts
        and the last infrastructure error.  The serving layer folds this
        into per-snapshot health states.
        """
        return None if self._execution_ is None else self._execution_.health()

    def _shard_arrays(self) -> Dict[str, np.ndarray]:
        """Fit-time arrays the sharded kernel tasks read (per-family)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a sharded kernel image"
        )

    def _shard_meta(self) -> Dict[str, Any]:
        """Small picklable facts accompanying :meth:`_shard_arrays`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a sharded kernel image"
        )

    def _dispatch(self, fn, payloads, run_arrays=None):
        """Run sharded kernel tasks through the execution backend.

        Results come back in payload order; worker probe-counter deltas are
        folded into this index's :class:`IndexStats` (integer sums, so the
        totals equal a serial run exactly).
        """
        from repro.indexes.parallel import run_index_tasks

        return run_index_tasks(self, fn, payloads, run_arrays)

    def _sharded_rho(self, task, dcs) -> "list[np.ndarray]":
        """ρ for every ``dc`` in ``dcs`` as one sharded ``(dc, chunk)`` grid.

        Shared by the tree and grid families: all ``len(dcs) × n_chunks``
        tasks are submitted in one wave, so a multi-``dc`` sweep keeps every
        worker busy even when a single cut-off has fewer chunks than
        workers.  Row ``i`` of the result is bit-identical to a serial
        ``rho_all(dcs[i])``.
        """
        chunks = self._execution().plan(self.n)
        payloads = [
            {"dc": float(dc), "start": start, "stop": stop}
            for dc in dcs
            for start, stop in chunks
        ]
        outs = self._dispatch(task, payloads)
        per_dc = len(chunks)
        return [
            np.concatenate(
                [outs[i * per_dc + j]["rho"] for j in range(per_dc)]
            ).astype(np.int64, copy=False)
            for i in range(len(dcs))
        ]

    def _sharded_delta_engine(self, task, qid, qord, n_orders, run_arrays):
        """Shard a sweep's batched δ engine runs into ``(order, chunk)`` tasks.

        ``qid``/``qord`` come from
        :func:`~repro.indexes.kernels.delta_multi_from_orders`, whose
        per-order query segments are contiguous; every chunk of every
        segment becomes one task and all tasks go out in a single wave.
        Shared by the tree family and the grid (same schedule, different
        task function).
        """
        ex = self._execution()
        payloads = []
        for o in range(n_orders):
            seg = np.flatnonzero(qord == o)
            base = int(seg[0]) if len(seg) else 0
            payloads.extend(
                {"order": o, "a": base + start, "b": base + stop}
                for start, stop in ex.plan(len(seg))
            )
        outs = self._dispatch(task, payloads, run_arrays)
        delta = np.empty(len(qid), dtype=np.float64)
        mu = np.empty(len(qid), dtype=np.int64)
        for payload, out in zip(payloads, outs):
            delta[payload["a"] : payload["b"]] = out["delta"]
            mu[payload["a"] : payload["b"]] = out["mu"]
        return delta, mu

    # -- instrumentation ---------------------------------------------------------

    def stats(self) -> IndexStats:
        return self._stats

    def reset_stats(self) -> None:
        self._stats.reset()

    def _probe_snapshot(self) -> Optional[Dict[str, int]]:
        """Probe counters before a query, or ``None`` with capture off."""
        if not obs_runtime._ENABLED:
            return None
        return self.stats().as_dict()

    def _emit_probe_delta(self, before: Optional[Dict[str, int]]) -> None:
        """Publish the probe work one query added as counter increments.

        Emitted at query granularity (never inside kernel loops), from the
        same :class:`IndexStats` the bit-identity suites assert on — so the
        live metrics and the test-visible counters cannot drift apart.
        """
        if before is None or not obs_runtime._ENABLED:
            return
        after = self.stats().as_dict()
        probe_counter = obs_metrics.counter(
            "repro_probe_ops_total",
            "Logical probe work by counter kind (distance evals, node visits, prunes)",
            ("counter",),
        )
        for key, value in after.items():
            delta = value - before.get(key, 0)
            if delta:
                probe_counter.labels(key).inc(delta)

    def describe(self) -> Dict[str, Any]:
        """Human-oriented summary used by the harness tables."""
        return {
            "index": self.name,
            "n": self.n if self.is_fitted else None,
            "metric": self.metric.name,
            "exact": self.exact,
            "memory_bytes": self.memory_bytes() if self.is_fitted else None,
            "build_seconds": self.build_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"n={self.n}" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}({state}, metric={self.metric.name!r})"
