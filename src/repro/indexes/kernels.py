"""Vectorized query kernels shared by every index family.

The paper's workload is *many* queries over one frozen structure: every
``dc`` trial re-runs ρ over all ``n`` objects, and each ρ is a binary search
(List/CH) or a container classification (grid/trees).  The seed
implementation answered them one object at a time from Python; this module
provides the batched, array-level building blocks the indexes now share:

* :func:`bounded_searchsorted` — one binary search per *row* of a CSR-layout
  flat array, all rows advanced together (``O(log m)`` numpy passes instead
  of ``n`` Python ``np.searchsorted`` calls).  Broadcasts over a grid of
  needles, which is what makes the multi-``dc`` sweep API one call.
* :func:`row_searchsorted` — the same search over a dense ``(n, m)``
  row-sorted matrix (the N-List layout of the List/CH indexes).
* :func:`build_row_histograms` — Algorithm 3 (cumulative histogram
  construction) for all objects at once: bin every stored distance with one
  global ``searchsorted``, then count-and-cumsum per row.
* :func:`scan_first_denser` / :func:`prefetch_scan_block` — the blockwise
  near-to-far "first denser neighbour" scan behind Algorithm 2's δ query,
  over CSR rows; the prefetched first block can be reused across the ``dc``
  values of a sweep.
* :func:`ch_rho_from_histograms` — Algorithm 4's ρ lookup (bin → section →
  bounded search) for all objects at once, with the FP-safe bin-edge
  handling described below.

Exactness contract
------------------
Each kernel performs, per row, the same comparisons in the same order as the
scalar code it replaced, so results stay bit-for-bit identical to
``naive_quantities`` and the :class:`~repro.indexes.base.IndexStats`
counters keep their seed semantics (a binary search per object, a scanned
entry per examined list slot, ...).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR
from repro.geometry.distance import cross_blocks

__all__ = [
    "bounded_searchsorted",
    "row_searchsorted",
    "build_row_histograms",
    "prefetch_scan_block",
    "scan_first_denser",
    "resolve_bin",
    "ch_rho_from_histograms",
    "peak_delta_sweep",
]


def bounded_searchsorted(
    values: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    needles,
    side: str = "left",
) -> np.ndarray:
    """Vectorised per-row binary search over a flat CSR values array.

    For every broadcast element ``i``, returns the insertion position of
    ``needles[i]`` into the sorted slice ``values[starts[i]:stops[i]]`` as an
    **absolute** index into ``values`` (subtract ``starts`` for the row-local
    position).  ``starts``/``stops``/``needles`` broadcast together, so one
    call can answer an ``(n_rows, n_needles)`` grid — the multi-``dc`` path.

    Equivalent to ``starts[i] + np.searchsorted(values[starts[i]:stops[i]],
    needles[i], side)`` for every ``i``, in ``O(log max_row)`` numpy passes.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    values = np.asarray(values)
    lo, hi, needles = np.broadcast_arrays(
        np.asarray(starts, dtype=np.int64),
        np.asarray(stops, dtype=np.int64),
        np.asarray(needles),
    )
    lo = lo.astype(np.int64, copy=True)
    hi = hi.astype(np.int64, copy=True)
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go_right = (probe < needles) if side == "left" else (probe <= needles)
        go_right &= active
        lo[go_right] = mid[go_right] + 1
        shrink = active & ~go_right
        hi[shrink] = mid[shrink]
        active = lo < hi
    return lo


def row_searchsorted(rows: np.ndarray, needles, side: str = "left") -> np.ndarray:
    """Row-wise :func:`numpy.searchsorted` over a dense row-sorted matrix.

    ``rows`` is ``(n, m)`` with each row sorted ascending.  ``needles`` is a
    scalar (one search per row, ``(n,)`` result), an ``(n,)`` vector (a
    different needle per row, ``(n,)`` result), or a ``(1, k)`` / ``(n, k)``
    grid (``(n, k)`` result).  Positions are **row-local** insertion indexes.
    """
    rows = np.ascontiguousarray(rows)
    n, m = rows.shape
    needles = np.asarray(needles)
    grid = needles.ndim == 2
    starts = np.arange(n, dtype=np.int64) * m
    if grid:
        starts = starts[:, None]
    pos = bounded_searchsorted(rows.reshape(-1), starts, starts + m, needles, side)
    return pos - starts


def build_row_histograms(
    dists: np.ndarray,
    offsets: np.ndarray,
    n_bins: np.ndarray,
    edges: np.ndarray,
    block_elems: int = 4_000_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative histograms over CSR rows of sorted distances (Algorithm 3).

    Row ``p`` occupies ``dists[offsets[p]:offsets[p+1]]``; its histogram has
    ``n_bins[p]`` bins where bin ``k`` stores ``|{d in row : d < edges[k]}|``
    (``edges`` is the shared ascending edge grid ``w·1, w·2, ...``, of length
    ``>= n_bins.max()``).  Returns CSR ``(hist_offsets, hist_values)``.

    Instead of ``n`` per-row ``searchsorted(row, edges)`` calls, every stored
    distance is binned once against the global edge grid, then per-row
    ``bincount`` + ``cumsum`` produce the cumulative counts — identical
    values because ``d < edges[k]  ⟺  |{edges ≤ d}| ≤ k`` for an ascending
    edge grid.  Rows are processed in blocks so the dense ``(rows, max_bins)``
    intermediate stays under ``block_elems`` elements.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_bins = np.asarray(n_bins, dtype=np.int64)
    n = len(n_bins)
    hist_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_bins, out=hist_offsets[1:])
    values = np.empty(int(hist_offsets[-1]), dtype=np.int64)
    max_bins = int(n_bins.max()) if n else 0
    if max_bins == 0:
        return hist_offsets, values
    if len(edges) < max_bins:
        raise ValueError(f"edges has {len(edges)} entries, need >= {max_bins}")
    edges = np.asarray(edges, dtype=np.float64)[:max_bins]
    block = max(1, min(n, block_elems // (max_bins + 1)))
    for s in range(0, n, block):
        e = min(s + block, n)
        rows = e - s
        seg = dists[offsets[s] : offsets[e]]
        lengths = np.diff(offsets[s : e + 1])
        # |{edges <= d}| per element, clipped into a discard bucket past the
        # last requested bin.
        bin_idx = np.minimum(
            np.searchsorted(edges, seg, side="right"), max_bins
        )
        labels = np.repeat(
            np.arange(rows, dtype=np.int64) * (max_bins + 1), lengths
        )
        labels += bin_idx
        counts = np.bincount(labels, minlength=rows * (max_bins + 1))
        cum = counts.reshape(rows, max_bins + 1)[:, :max_bins].cumsum(axis=1)
        nb = n_bins[s:e]
        row_rep = np.repeat(np.arange(rows, dtype=np.int64), nb)
        col = np.arange(int(hist_offsets[s]), int(hist_offsets[e]), dtype=np.int64)
        col -= np.repeat(hist_offsets[s:e], nb)
        values[hist_offsets[s] : hist_offsets[e]] = cum[row_rep, col]
    return hist_offsets, values


def prefetch_scan_block(
    offsets: np.ndarray, ids: np.ndarray, dists: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise the first ``width`` columns of every CSR row.

    Returns ``(cand, dist, valid)`` with shape ``(n, width)``; slots past a
    row's end are masked by ``valid``.  A sweep over many ``dc`` values can
    gather this once and hand it to every :func:`scan_first_denser` call —
    the candidate layout does not depend on the density ordering.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(offsets) - 1
    lengths = np.diff(offsets)
    width = min(int(width), int(lengths.max()) if n else 0)
    cols = np.arange(width, dtype=np.int64)
    valid = cols[None, :] < lengths[:, None]
    flat = np.where(valid, offsets[:-1, None] + cols[None, :], 0)
    if len(ids):
        cand = ids[flat]
        dist = dists[flat]
    else:
        cand = np.zeros_like(flat)
        dist = np.zeros(flat.shape, dtype=np.float64)
    return cand, dist, valid


def scan_first_denser(
    offsets: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    key: np.ndarray,
    block: int = 32,
    prefetch: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Blockwise near-to-far scan for the first denser neighbour per row.

    ``key`` encodes the density total order: object ``q`` is denser than
    ``p`` iff ``key[q] < key[p]`` (use ``order.rank`` for
    :data:`~repro.core.quantities.TieBreak.ID`, ``-order.rho`` for STRICT).
    Rows are the CSR rows of ``(offsets, ids, dists)`` — each sorted
    near-to-far, Algorithm 2 lines 7-13.

    Returns ``(delta, mu, resolved, scanned)``: per row the distance and id
    of the first denser neighbour (undefined ``delta`` and
    ``mu == NO_NEIGHBOR`` where ``resolved`` is False — the caller applies
    its own peak/truncation convention), plus the number of list slots
    examined (the ``objects_scanned`` stat).

    ``prefetch`` (from :func:`prefetch_scan_block`) supplies pre-gathered
    first columns; the scan then starts at ``prefetch`` width.  Since almost
    every non-peak object resolves within the first few entries (Theorem 1),
    this removes the dominant gather from every call of a multi-``dc`` sweep.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(offsets) - 1
    lengths = np.diff(offsets)
    delta = np.empty(n, dtype=np.float64)
    mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
    scanned = 0
    unresolved = np.arange(n)
    col = 0
    max_len = int(lengths.max()) if n else 0

    if prefetch is not None and n:
        cand, dmat, valid = prefetch
        width = cand.shape[1]
        denser = (key[cand] < key[:, None]) & valid
        scanned += int(valid.sum())
        found = denser.any(axis=1)
        if found.any():
            first = denser[found].argmax(axis=1)
            rows = np.flatnonzero(found)
            delta[rows] = dmat[found, first]
            mu[rows] = cand[found, first]
        unresolved = np.flatnonzero(~found)
        unresolved = unresolved[lengths[unresolved] > width]
        col = width

    while len(unresolved) and col < max_len:
        width = min(block, max_len - col)
        rows = unresolved
        cols = np.arange(col, col + width, dtype=np.int64)
        valid = cols[None, :] < lengths[rows][:, None]
        flat = np.where(valid, offsets[rows][:, None] + cols[None, :], 0)
        cand = ids[flat] if len(ids) else np.zeros_like(flat)
        denser = (key[cand] < key[rows, None]) & valid
        scanned += int(valid.sum())
        found = denser.any(axis=1)
        if found.any():
            first = denser[found].argmax(axis=1)
            hit = rows[found]
            flat_hit = offsets[hit] + col + first
            delta[hit] = dists[flat_hit]
            mu[hit] = ids[flat_hit]
            unresolved = unresolved[~found]
        # Rows whose list is exhausted can never resolve; drop them now.
        unresolved = unresolved[lengths[unresolved] > col + width]
        col += width

    return delta, mu, mu != NO_NEIGHBOR, scanned


def resolve_bin(dc: float, w: float, max_bins: Optional[int] = None) -> int:
    """The histogram bin whose edge interval contains ``dc``, FP-safely.

    The stored edges are the *computed* products ``fl(w·k)``, which need not
    agree with ``floor(dc / w)`` at the last ulp.  Pin the bin so that
    ``fl(w·target) <= dc < fl(w·(target+1))`` — the invariant the section
    search below relies on.

    ``max_bins`` caps the result: the invariant only matters for bins that
    exist, and for ``dc / w`` beyond the stored range the ±1 ulp-correction
    loops would otherwise walk one ``w`` at a time across a gap that can be
    astronomically many steps wide (``ulp(w·target) >> w`` once
    ``dc/w ≳ 2^52``).  Past the cap the caller treats every row as "dc
    beyond the last bin", where bit-precision is irrelevant.
    """
    quotient = np.floor(dc / w)
    if not np.isfinite(quotient):
        # dc/w overflowed (e.g. dc near float max with a small w): beyond
        # any representable bin grid.
        if max_bins is None:
            raise OverflowError(f"dc/w = {dc!r}/{w!r} overflows; pass max_bins")
        return max_bins + 1
    target = int(quotient)
    if target < 0:
        target = 0
    if max_bins is not None and target > max_bins:
        return max_bins + 1
    while target > 0 and w * target > dc:
        target -= 1
    while w * (target + 1) <= dc:
        target += 1
        if max_bins is not None and target > max_bins:
            break
    return target


def ch_rho_from_histograms(
    hist_offsets: np.ndarray,
    hist_values: np.ndarray,
    dists: np.ndarray,
    row_starts: np.ndarray,
    dc: float,
    w: float,
) -> Tuple[np.ndarray, int, int]:
    """Algorithm 4's ρ query for every object at once.

    ``(hist_offsets, hist_values)`` are the CSR cumulative histograms;
    ``dists`` is the flat sorted-distance storage with row ``p`` starting at
    ``row_starts[p]``.  Returns ``(rho, objects_scanned, binary_searches)``
    — the two counters matching the seed's per-object accounting (a section
    is scanned/searched only when its two bounding bins differ).

    The ``dc`` exactly-on-a-bin-edge fast path only fires when the *stored*
    edge reproduces ``dc`` bit-for-bit (``fl(w·target) == dc``); a quotient
    test (``dc/w`` integral) is not sufficient because ``fl(fl(dc/w)·w)``
    need not round back to ``dc``, which silently broke the strict
    ``dist < dc`` definition on adversarial ``dc``/``w`` pairs.
    """
    hist_offsets = np.asarray(hist_offsets, dtype=np.int64)
    row_starts = np.asarray(row_starts, dtype=np.int64)
    n = len(hist_offsets) - 1
    sizes = np.diff(hist_offsets)
    target = resolve_bin(dc, w, max_bins=int(sizes.max()) if n else 0)
    rho = np.empty(n, dtype=np.int64)

    # Strictly past the last bin (target > size): every stored entry is
    # < fl(w·size) < w·(size+1) <= w·target <= dc, so the forced full count
    # is the exact strict-< answer.  target == size is NOT safe for this
    # shortcut — dc then sits within one edge of the last stored distances
    # and a tie at dist == dc must be excluded — so those rows fall through
    # to a section search over the last bin.
    beyond = target > sizes
    if beyond.any():
        rho[beyond] = hist_values[hist_offsets[1:][beyond] - 1]
    rest = np.flatnonzero(~beyond)
    if len(rest) == 0:
        return rho, 0, 0
    starts_h = hist_offsets[:-1][rest]
    sz = sizes[rest]

    if target > 0 and w * target == dc:
        # dc is exactly the stored upper edge of bin target-1: that bin
        # already counts dist < dc (the paper's O(1) edge answer) — except
        # on rows where bin target-1 is the forced last bin, whose value is
        # the whole list regardless of dc.
        edge_ok = target < sz
        rows = rest[edge_ok]
        rho[rows] = hist_values[hist_offsets[:-1][rows] + target - 1]
        rest = rest[~edge_ok]
        if len(rest) == 0:
            return rho, 0, 0
        starts_h = hist_offsets[:-1][rest]
        sz = sizes[rest]

    # Section bounded by the two bins around dc; rows with target == size
    # clamp to their (forced) last bin.
    lo_bin = np.minimum(target, sz - 1)
    first = np.where(lo_bin > 0, hist_values[starts_h + np.maximum(lo_bin, 1) - 1], 0)
    last = hist_values[starts_h + lo_bin]
    lo = row_starts[rest] + first
    pos = bounded_searchsorted(dists, lo, row_starts[rest] + last, dc)
    rho[rest] = pos - row_starts[rest]
    section = last - first
    return rho, int(section.sum()), int(np.count_nonzero(section))


def peak_delta_sweep(
    points: np.ndarray,
    peaks: np.ndarray,
    metric,
    stats=None,
    block_elems: int = 4_000_000,
) -> np.ndarray:
    """δ of the global peak(s): ``max_q dist(p, q)`` per peak, one cross call.

    Replaces the per-peak ``distances_from`` loop (and the per-object
    ``p in peaks`` membership test around it) with a single blocked
    ``metric.cross`` over all peak rows.  Row maxima reduce the same flat
    distance values the scalar sweep produced, so the returned δ values are
    bit-identical.  Under :data:`~repro.core.quantities.TieBreak.ID` there is
    exactly one peak; STRICT mode on tie-heavy data can have many, hence the
    ``block_elems`` cap on the slab size.
    """
    peaks = np.asarray(peaks, dtype=np.int64)
    out = np.empty(len(peaks), dtype=np.float64)
    if len(peaks) == 0:
        return out
    for start, stop, block in cross_blocks(
        points[peaks], points, metric, block_elems=block_elems
    ):
        if stats is not None:
            stats.distance_evals += block.size
        out[start:stop] = block.max(axis=1)
    return out
