"""Vectorized query kernels shared by every index family.

The paper's workload is *many* queries over one frozen structure: every
``dc`` trial re-runs ρ over all ``n`` objects, and each ρ is a binary search
(List/CH) or a container classification (grid/trees).  The seed
implementation answered them one object at a time from Python; this module
provides the batched, array-level building blocks the indexes now share:

* :func:`bounded_searchsorted` — one binary search per *row* of a CSR-layout
  flat array, all rows advanced together (``O(log m)`` numpy passes instead
  of ``n`` Python ``np.searchsorted`` calls).  Broadcasts over a grid of
  needles, which is what makes the multi-``dc`` sweep API one call.
* :func:`row_searchsorted` — the same search over a dense ``(n, m)``
  row-sorted matrix (the N-List layout of the List/CH indexes).
* :func:`build_row_histograms` — Algorithm 3 (cumulative histogram
  construction) for all objects at once: bin every stored distance with one
  global ``searchsorted``, then count-and-cumsum per row.
* :func:`scan_first_denser` / :func:`prefetch_scan_block` — the blockwise
  near-to-far "first denser neighbour" scan behind Algorithm 2's δ query,
  over CSR rows; the prefetched first block can be reused across the ``dc``
  values of a sweep.
* :func:`ch_rho_from_histograms` — Algorithm 4's ρ lookup (bin → section →
  bounded search) for all objects at once, with the FP-safe bin-edge
  handling described below.
* :func:`tree_delta_batched` / :func:`grid_delta_batched` /
  :func:`peak_delta_sweep` — the **batched δ engine** (Algorithm 6 and its
  grid analogue), described below.

Exactness contract
------------------
Each kernel performs, per row, the same comparisons in the same order as the
scalar code it replaced, so results stay bit-for-bit identical to
``naive_quantities`` and the :class:`~repro.indexes.base.IndexStats`
counters keep their seed semantics (a binary search per object, a scanned
entry per examined list slot, ...).

The batched δ engine (frontier-batched best-first search)
---------------------------------------------------------
:func:`tree_delta_batched` replaces the per-object best-first search of
Algorithm 6 with a *level-synchronous* traversal over a flattened
(structure-of-arrays) tree image (:func:`flatten_tree`): the frontier is a
flat array of unresolved ``(query, node)`` pairs, advanced one tree level
per Python step — child expansion, rectangle bounds, and both prunings are
single vectorised operations over the whole pair array (per-row boxes
through the metric's ``rect_*_many`` kernels).  Pruning stays exactly the
paper's two lemmas, applied element-wise over the pairs:

* **Lemma 1 (density)** — drop ``(query, child)`` pairs with
  ``maxrho < ρ(p)`` (equality kept, so id tie-breaking stays exact);
* **Lemma 2 (distance)** — drop pairs whose ``mindist`` strictly exceeds
  the query's pruning radius.  The radius is ``min(best_d, ub)`` where
  ``best_d`` is the best leaf candidate so far and ``ub`` is a sound upper
  bound gathered top-down: any node with ``maxrho`` *strictly above* ρ(p)
  certainly contains a denser object, so its ``maxdist`` bounds δ(p) before
  a single leaf has been scanned.  Pruning uses strict ``>`` against the
  radius, hence a subtree that could still *tie* the best distance (and win
  the smaller-id tie-break) is never discarded — results are bit-identical
  to the per-object reference traversal.

Leaves (and grid cells) resolve through one paired-distance evaluation
(:func:`repro.geometry.distance.paired_distances` — bit-identical
arithmetic to ``cross``) over the expanded ``(query, member)`` pairs,
followed by segment ``minimum.reduceat`` reductions that reproduce the
reference's ``np.lexsort((cand, d))[0]`` smaller-id tie-break exactly.
Queries carry an ``order row`` index, so one engine invocation *can*
advance the queries of several density orders at once; the production
multi-``dc`` sweep (``delta_all_multi``) shares the flattened image, one
vectorised all-orders ``maxrho`` annotation (:func:`flat_tree_maxrho`, one
``reduceat`` per tree level) and a deduplicated peak sweep, but runs the
traversal per order — smaller pair arrays and the single-order gather
fast paths measured faster than one interleaved union traversal.

**Counter semantics in batched mode:** the engine counts per *block-visit*
element — ``nodes_visited`` increments by the number of queries in the
block that actually visit the node, ``nodes_pruned_density`` /
``nodes_pruned_distance`` by the number of pruned ``(query, node)`` pairs,
``objects_scanned`` by ``block × leaf`` pairs and ``distance_evals`` by the
exact number of distances computed.  These are the same per-object totals
the paper's figures aggregate, but the traversal *schedule* differs from
the scalar reference (level-synchronous vs depth-first), so per-object
counter values are not reproduced term-for-term — use the ``"heap"`` /
``"stack"`` reference frontiers when the scalar schedule itself matters.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR
from repro.geometry.distance import (
    cross_blocks,
    get_metric,
    paired_distances,
    rect_bounds_many,
)

__all__ = [
    "bounded_searchsorted",
    "row_searchsorted",
    "build_row_histograms",
    "prefetch_scan_block",
    "scan_first_denser",
    "resolve_bin",
    "ch_rho_from_histograms",
    "peak_delta_sweep",
    "density_order_key",
    "delta_multi_from_orders",
    "merge_delta_candidates",
    "gather_min_denser",
    "FlatTree",
    "flatten_tree",
    "flat_tree_maxrho",
    "tree_rho_batched",
    "tree_delta_batched",
    "grid_rho_batched",
    "grid_delta_batched",
]


def bounded_searchsorted(
    values: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    needles,
    side: str = "left",
) -> np.ndarray:
    """Vectorised per-row binary search over a flat CSR values array.

    For every broadcast element ``i``, returns the insertion position of
    ``needles[i]`` into the sorted slice ``values[starts[i]:stops[i]]`` as an
    **absolute** index into ``values`` (subtract ``starts`` for the row-local
    position).  ``starts``/``stops``/``needles`` broadcast together, so one
    call can answer an ``(n_rows, n_needles)`` grid — the multi-``dc`` path.

    Equivalent to ``starts[i] + np.searchsorted(values[starts[i]:stops[i]],
    needles[i], side)`` for every ``i``, in ``O(log max_row)`` numpy passes.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    values = np.asarray(values)
    lo, hi, needles = np.broadcast_arrays(
        np.asarray(starts, dtype=np.int64),
        np.asarray(stops, dtype=np.int64),
        np.asarray(needles),
    )
    lo = lo.astype(np.int64, copy=True)
    hi = hi.astype(np.int64, copy=True)
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        probe = values[np.where(active, mid, 0)]
        go_right = (probe < needles) if side == "left" else (probe <= needles)
        go_right &= active
        lo[go_right] = mid[go_right] + 1
        shrink = active & ~go_right
        hi[shrink] = mid[shrink]
        active = lo < hi
    return lo


def row_searchsorted(rows: np.ndarray, needles, side: str = "left") -> np.ndarray:
    """Row-wise :func:`numpy.searchsorted` over a dense row-sorted matrix.

    ``rows`` is ``(n, m)`` with each row sorted ascending.  ``needles`` is a
    scalar (one search per row, ``(n,)`` result), an ``(n,)`` vector (a
    different needle per row, ``(n,)`` result), or a ``(1, k)`` / ``(n, k)``
    grid (``(n, k)`` result).  Positions are **row-local** insertion indexes.
    """
    rows = np.ascontiguousarray(rows)
    n, m = rows.shape
    needles = np.asarray(needles)
    grid = needles.ndim == 2
    starts = np.arange(n, dtype=np.int64) * m
    if grid:
        starts = starts[:, None]
    pos = bounded_searchsorted(rows.reshape(-1), starts, starts + m, needles, side)
    return pos - starts


def build_row_histograms(
    dists: np.ndarray,
    offsets: np.ndarray,
    n_bins: np.ndarray,
    edges: np.ndarray,
    block_elems: int = 4_000_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative histograms over CSR rows of sorted distances (Algorithm 3).

    Row ``p`` occupies ``dists[offsets[p]:offsets[p+1]]``; its histogram has
    ``n_bins[p]`` bins where bin ``k`` stores ``|{d in row : d < edges[k]}|``
    (``edges`` is the shared ascending edge grid ``w·1, w·2, ...``, of length
    ``>= n_bins.max()``).  Returns CSR ``(hist_offsets, hist_values)``.

    Instead of ``n`` per-row ``searchsorted(row, edges)`` calls, every stored
    distance is binned once against the global edge grid, then per-row
    ``bincount`` + ``cumsum`` produce the cumulative counts — identical
    values because ``d < edges[k]  ⟺  |{edges ≤ d}| ≤ k`` for an ascending
    edge grid.  Rows are processed in blocks so the dense ``(rows, max_bins)``
    intermediate stays under ``block_elems`` elements.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_bins = np.asarray(n_bins, dtype=np.int64)
    n = len(n_bins)
    hist_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_bins, out=hist_offsets[1:])
    values = np.empty(int(hist_offsets[-1]), dtype=np.int64)
    max_bins = int(n_bins.max()) if n else 0
    if max_bins == 0:
        return hist_offsets, values
    if len(edges) < max_bins:
        raise ValueError(f"edges has {len(edges)} entries, need >= {max_bins}")
    edges = np.asarray(edges, dtype=np.float64)[:max_bins]
    block = max(1, min(n, block_elems // (max_bins + 1)))
    for s in range(0, n, block):
        e = min(s + block, n)
        rows = e - s
        seg = dists[offsets[s] : offsets[e]]
        lengths = np.diff(offsets[s : e + 1])
        # |{edges <= d}| per element, clipped into a discard bucket past the
        # last requested bin.
        bin_idx = np.minimum(
            np.searchsorted(edges, seg, side="right"), max_bins
        )
        labels = np.repeat(
            np.arange(rows, dtype=np.int64) * (max_bins + 1), lengths
        )
        labels += bin_idx
        counts = np.bincount(labels, minlength=rows * (max_bins + 1))
        cum = counts.reshape(rows, max_bins + 1)[:, :max_bins].cumsum(axis=1)
        nb = n_bins[s:e]
        row_rep = np.repeat(np.arange(rows, dtype=np.int64), nb)
        col = np.arange(int(hist_offsets[s]), int(hist_offsets[e]), dtype=np.int64)
        col -= np.repeat(hist_offsets[s:e], nb)
        values[hist_offsets[s] : hist_offsets[e]] = cum[row_rep, col]
    return hist_offsets, values


def prefetch_scan_block(
    offsets: np.ndarray, ids: np.ndarray, dists: np.ndarray, width: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise the first ``width`` columns of every CSR row.

    Returns ``(cand, dist, valid)`` with shape ``(n, width)``; slots past a
    row's end are masked by ``valid``.  A sweep over many ``dc`` values can
    gather this once and hand it to every :func:`scan_first_denser` call —
    the candidate layout does not depend on the density ordering.

    ``width`` is honoured exactly (never clamped to the batch's longest
    row): the scan's column boundaries must depend only on the requested
    geometry, so a sharded run over row subsets examines precisely the
    slots the whole-batch run would — the execution-backend bit-identity
    contract (:mod:`repro.indexes.parallel`).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(offsets) - 1
    lengths = np.diff(offsets)
    width = int(width)
    cols = np.arange(width, dtype=np.int64)
    valid = cols[None, :] < lengths[:, None]
    flat = np.where(valid, offsets[:-1, None] + cols[None, :], 0)
    if len(ids):
        cand = ids[flat]
        dist = dists[flat]
    else:
        cand = np.zeros_like(flat)
        dist = np.zeros(flat.shape, dtype=np.float64)
    return cand, dist, valid


def scan_first_denser(
    offsets: np.ndarray,
    ids: np.ndarray,
    dists: np.ndarray,
    key: np.ndarray,
    block: int = 32,
    prefetch: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    qid: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Blockwise near-to-far scan for the first denser neighbour per row.

    ``key`` encodes the density total order: object ``q`` is denser than
    ``p`` iff ``key[q] < key[p]`` (use ``order.rank`` for
    :data:`~repro.core.quantities.TieBreak.ID`, ``-order.rho`` for STRICT).
    Rows are the CSR rows of ``(offsets, ids, dists)`` — each sorted
    near-to-far, Algorithm 2 lines 7-13.

    ``qid`` gives the global object id of each CSR row (default: row ``i``
    is object ``i``).  Passing a row *subset* plus its ids is how the
    execution backends shard the scan: every row examines exactly the slots
    it would in a whole-table run because the column strides below are
    absolute (fixed ``block`` boundaries, never adapted to the longest row
    of the batch).

    Returns ``(delta, mu, resolved, scanned)``: per row the distance and id
    of the first denser neighbour (undefined ``delta`` and
    ``mu == NO_NEIGHBOR`` where ``resolved`` is False — the caller applies
    its own peak/truncation convention), plus the number of list slots
    examined (the ``objects_scanned`` stat).

    ``prefetch`` (from :func:`prefetch_scan_block`) supplies pre-gathered
    first columns; the scan then starts at ``prefetch`` width.  Since almost
    every non-peak object resolves within the first few entries (Theorem 1),
    this removes the dominant gather from every call of a multi-``dc`` sweep.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = len(offsets) - 1
    lengths = np.diff(offsets)
    key_q = key if qid is None else key[np.asarray(qid, dtype=np.int64)]
    delta = np.empty(n, dtype=np.float64)
    mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
    scanned = 0
    unresolved = np.arange(n)
    col = 0
    max_len = int(lengths.max()) if n else 0

    if prefetch is not None and n:
        cand, dmat, valid = prefetch
        width = cand.shape[1]
        denser = (key[cand] < key_q[:, None]) & valid
        scanned += int(valid.sum())
        found = denser.any(axis=1)
        if found.any():
            first = denser[found].argmax(axis=1)
            rows = np.flatnonzero(found)
            delta[rows] = dmat[found, first]
            mu[rows] = cand[found, first]
        unresolved = np.flatnonzero(~found)
        unresolved = unresolved[lengths[unresolved] > width]
        col = width

    while len(unresolved) and col < max_len:
        # Fixed absolute stride: always a full `block` of columns, with the
        # row-length mask trimming slots past each row's end.  Clipping the
        # stride to the batch's max length would only drop always-invalid
        # columns, but it would make the per-row scanned-slot count depend
        # on which other rows share the batch — sharded runs must reproduce
        # the whole-table counters exactly.
        width = block
        rows = unresolved
        cols = np.arange(col, col + width, dtype=np.int64)
        valid = cols[None, :] < lengths[rows][:, None]
        flat = np.where(valid, offsets[rows][:, None] + cols[None, :], 0)
        cand = ids[flat] if len(ids) else np.zeros_like(flat)
        denser = (key[cand] < key_q[rows, None]) & valid
        scanned += int(valid.sum())
        found = denser.any(axis=1)
        if found.any():
            first = denser[found].argmax(axis=1)
            hit = rows[found]
            flat_hit = offsets[hit] + col + first
            delta[hit] = dists[flat_hit]
            mu[hit] = ids[flat_hit]
            unresolved = unresolved[~found]
        # Rows whose list is exhausted can never resolve; drop them now.
        unresolved = unresolved[lengths[unresolved] > col + width]
        col += width

    return delta, mu, mu != NO_NEIGHBOR, scanned


def resolve_bin(dc: float, w: float, max_bins: Optional[int] = None) -> int:
    """The histogram bin whose edge interval contains ``dc``, FP-safely.

    The stored edges are the *computed* products ``fl(w·k)``, which need not
    agree with ``floor(dc / w)`` at the last ulp.  Pin the bin so that
    ``fl(w·target) <= dc < fl(w·(target+1))`` — the invariant the section
    search below relies on.

    ``max_bins`` caps the result: the invariant only matters for bins that
    exist, and for ``dc / w`` beyond the stored range the ±1 ulp-correction
    loops would otherwise walk one ``w`` at a time across a gap that can be
    astronomically many steps wide (``ulp(w·target) >> w`` once
    ``dc/w ≳ 2^52``).  Past the cap the caller treats every row as "dc
    beyond the last bin", where bit-precision is irrelevant.
    """
    quotient = np.floor(dc / w)
    if not np.isfinite(quotient):
        # dc/w overflowed (e.g. dc near float max with a small w): beyond
        # any representable bin grid.
        if max_bins is None:
            raise OverflowError(f"dc/w = {dc!r}/{w!r} overflows; pass max_bins")
        return max_bins + 1
    target = int(quotient)
    if target < 0:
        target = 0
    if max_bins is not None and target > max_bins:
        return max_bins + 1
    while target > 0 and w * target > dc:
        target -= 1
    while w * (target + 1) <= dc:
        target += 1
        if max_bins is not None and target > max_bins:
            break
    return target


def ch_rho_from_histograms(
    hist_offsets: np.ndarray,
    hist_values: np.ndarray,
    dists: np.ndarray,
    row_starts: np.ndarray,
    dc: float,
    w: float,
    max_bins: Optional[int] = None,
) -> Tuple[np.ndarray, int, int]:
    """Algorithm 4's ρ query for every object at once.

    ``(hist_offsets, hist_values)`` are the CSR cumulative histograms;
    ``dists`` is the flat sorted-distance storage with row ``p`` starting at
    ``row_starts[p]``.  Returns ``(rho, objects_scanned, binary_searches)``
    — the two counters matching the seed's per-object accounting (a section
    is scanned/searched only when its two bounding bins differ).

    ``hist_offsets`` may be a contiguous *slice* of the full offsets array
    (the execution backends shard rows this way): the stored values are
    absolute positions into ``hist_values``, so a row subset needs no
    re-basing.  ``max_bins`` then pins :func:`resolve_bin`'s cap to the
    whole table's largest histogram so the resolved target bin — and hence
    every per-row decision — matches the unsharded call exactly.

    The ``dc`` exactly-on-a-bin-edge fast path only fires when the *stored*
    edge reproduces ``dc`` bit-for-bit (``fl(w·target) == dc``); a quotient
    test (``dc/w`` integral) is not sufficient because ``fl(fl(dc/w)·w)``
    need not round back to ``dc``, which silently broke the strict
    ``dist < dc`` definition on adversarial ``dc``/``w`` pairs.
    """
    hist_offsets = np.asarray(hist_offsets, dtype=np.int64)
    row_starts = np.asarray(row_starts, dtype=np.int64)
    n = len(hist_offsets) - 1
    sizes = np.diff(hist_offsets)
    if max_bins is None:
        max_bins = int(sizes.max()) if n else 0
    target = resolve_bin(dc, w, max_bins=int(max_bins))
    rho = np.empty(n, dtype=np.int64)

    # Strictly past the last bin (target > size): every stored entry is
    # < fl(w·size) < w·(size+1) <= w·target <= dc, so the forced full count
    # is the exact strict-< answer.  target == size is NOT safe for this
    # shortcut — dc then sits within one edge of the last stored distances
    # and a tie at dist == dc must be excluded — so those rows fall through
    # to a section search over the last bin.
    beyond = target > sizes
    if beyond.any():
        rho[beyond] = hist_values[hist_offsets[1:][beyond] - 1]
    rest = np.flatnonzero(~beyond)
    if len(rest) == 0:
        return rho, 0, 0
    starts_h = hist_offsets[:-1][rest]
    sz = sizes[rest]

    if target > 0 and w * target == dc:
        # dc is exactly the stored upper edge of bin target-1: that bin
        # already counts dist < dc (the paper's O(1) edge answer) — except
        # on rows where bin target-1 is the forced last bin, whose value is
        # the whole list regardless of dc.
        edge_ok = target < sz
        rows = rest[edge_ok]
        rho[rows] = hist_values[hist_offsets[:-1][rows] + target - 1]
        rest = rest[~edge_ok]
        if len(rest) == 0:
            return rho, 0, 0
        starts_h = hist_offsets[:-1][rest]
        sz = sizes[rest]

    # Section bounded by the two bins around dc; rows with target == size
    # clamp to their (forced) last bin.
    lo_bin = np.minimum(target, sz - 1)
    first = np.where(lo_bin > 0, hist_values[starts_h + np.maximum(lo_bin, 1) - 1], 0)
    last = hist_values[starts_h + lo_bin]
    lo = row_starts[rest] + first
    pos = bounded_searchsorted(dists, lo, row_starts[rest] + last, dc)
    rho[rest] = pos - row_starts[rest]
    section = last - first
    return rho, int(section.sum()), int(np.count_nonzero(section))


# ---------------------------------------------------------------------------
# Batched δ engine (Algorithm 6, frontier-batched — see module docstring)
# ---------------------------------------------------------------------------


def peak_delta_sweep(
    points: np.ndarray,
    peaks: np.ndarray,
    metric,
    stats=None,
    block_elems: int = 4_000_000,
) -> np.ndarray:
    """δ of the global peak(s): ``max_q dist(p, q)`` per peak, one cross call.

    Replaces the per-peak ``distances_from`` loop (and the per-object
    ``p in peaks`` membership test around it) with a single blocked
    ``metric.cross`` over all peak rows.  Row maxima reduce the same flat
    distance values the scalar sweep produced, so the returned δ values are
    bit-identical.  Under :data:`~repro.core.quantities.TieBreak.ID` there is
    exactly one peak; STRICT mode on tie-heavy data can have many, hence the
    ``block_elems`` cap on the slab size.
    """
    peaks = np.asarray(peaks, dtype=np.int64)
    out = np.empty(len(peaks), dtype=np.float64)
    if len(peaks) == 0:
        return out
    for start, stop, block in cross_blocks(
        points[peaks], points, metric, block_elems=block_elems
    ):
        if stats is not None:
            stats.distance_evals += block.size
        out[start:stop] = block.max(axis=1)
    return out


def density_order_key(order) -> np.ndarray:
    """Total-order key of a :class:`~repro.core.quantities.DensityOrder`.

    ``q`` is denser than ``p``  ⟺  ``key[q] < key[p]``: the ``rank``
    permutation under the ID tie-break, ``-ρ`` under STRICT (ties then
    compare equal, exactly Eq. 2's strict reading).
    """
    from repro.core.quantities import TieBreak

    if order.tie_break is TieBreak.ID:
        return order.rank
    return -order.rho


def delta_multi_from_orders(
    points: np.ndarray,
    orders,
    run_engine,
    metric,
    stats,
):
    """Shared multi-order δ scaffolding for the batched engines.

    Builds the flattened non-peak query arrays over every density order,
    calls ``run_engine(qid, qord, rho_rows, key_rows) -> (delta_q, mu_q)``
    once for the whole sweep, resolves every distinct global peak with one
    blocked :func:`peak_delta_sweep`, and scatters the results back into
    per-order ``(delta, mu)`` pairs (element ``i`` bit-identical to a
    single-order run of ``orders[i]``).
    """
    n = len(points)
    rho_rows = np.asarray([order.rho for order in orders])
    key_rows = np.asarray([density_order_key(order) for order in orders])
    qid_parts, qord_parts, peak_parts = [], [], []
    for o, order in enumerate(orders):
        peaks = order.global_peaks()
        is_peak = np.zeros(n, dtype=bool)
        is_peak[peaks] = True
        qid_parts.append(np.flatnonzero(~is_peak))
        qord_parts.append(np.full(len(qid_parts[-1]), o, dtype=np.int64))
        peak_parts.append(peaks)
    delta_q, mu_q = run_engine(
        np.concatenate(qid_parts), np.concatenate(qord_parts), rho_rows, key_rows
    )
    all_peaks = np.concatenate(peak_parts)
    uniq_peaks, inverse = np.unique(all_peaks, return_inverse=True)
    peak_delta = peak_delta_sweep(points, uniq_peaks, metric, stats)

    out = []
    pos = 0
    peak_pos = 0
    for o in range(len(orders)):
        delta = np.empty(n, dtype=np.float64)
        mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
        ids = qid_parts[o]
        delta[ids] = delta_q[pos : pos + len(ids)]
        mu[ids] = mu_q[pos : pos + len(ids)]
        pos += len(ids)
        peaks = peak_parts[o]
        delta[peaks] = peak_delta[inverse[peak_pos : peak_pos + len(peaks)]]
        peak_pos += len(peaks)
        out.append((delta, mu))
    return out


def merge_delta_candidates(
    d_a: np.ndarray,
    mu_a: np.ndarray,
    d_b: np.ndarray,
    mu_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge per-image δ candidates by the lexicographic ``(distance, id)`` rule.

    When an index holds a base image plus a delta segment, each image's δ
    engine is exact over its own member set; the nearest denser neighbour
    over the union is the lexicographic minimum of the two per-image
    candidates — the same ``np.lexsort((cand, d))[0]`` rule the engines use
    internally, so the merged result is bit-identical to a single engine run
    over a combined image.
    """
    take_b = (d_b < d_a) | ((d_b == d_a) & (mu_b < mu_a))
    return np.where(take_b, d_b, d_a), np.where(take_b, mu_b, mu_a)


def gather_min_denser(
    q_points: np.ndarray,
    cand_points: np.ndarray,
    cand_ids: np.ndarray,
    denser: np.ndarray,
    metric,
    stats=None,
    no_candidate_id: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """One scatter/gather probe: nearest denser candidate per query row.

    ``denser`` is the ``(len(q_points), len(cand_points))`` boolean mask of
    admissible candidates; rows with none get ``(inf, no_candidate_id)``.
    ``cand_ids`` must be sorted ascending so the dense ``argmin`` — which
    returns the first minimum — realises the same lexicographic
    ``(distance, id)`` rule as the reference ``np.lexsort((cand, d))[0]``
    within the probed candidate set.  Cross-probe results then merge exactly
    with :func:`merge_delta_candidates`, so a gather spread over any number
    of disjoint candidate partitions reproduces a single global scan bit for
    bit (``metric.cross`` keeps distance arithmetic elementwise-identical
    regardless of batch shape).
    """
    dists = metric.cross(q_points, cand_points)
    if stats is not None:
        stats.distance_evals += dists.size
    masked = np.where(denser, dists, np.inf)
    j = masked.argmin(axis=1)
    rows = np.arange(len(masked))
    d = masked[rows, j]
    found = np.isfinite(d)
    mu = np.where(found, np.asarray(cand_ids, dtype=np.int64)[j], no_candidate_id)
    return d, mu


def _expand_csr(starts: np.ndarray, sizes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gather indices for variable-length CSR segments, concatenated.

    Returns ``(flat, seg_off)``: ``flat`` enumerates
    ``starts[i] .. starts[i] + sizes[i]`` for every segment back to back,
    ``seg_off[i]`` is where segment ``i`` begins inside ``flat`` (the
    ``reduceat`` boundaries).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    total = int(sizes.sum())
    seg_off = np.cumsum(sizes) - sizes
    pos = np.arange(total, dtype=np.int64) - np.repeat(seg_off, sizes)
    return np.repeat(np.asarray(starts, dtype=np.int64), sizes) + pos, seg_off


def _pair_rect_bounds(metric):
    """(mindist, maxdist) callables over per-row ``(n, d)`` boxes.

    The native ``rect_*_many`` kernels broadcast per-row boxes directly
    (their per-axis formulas are elementwise); metrics registered without
    them fall back to a scalar row loop so any exact-rect-bounds metric
    works in the batched engine.
    """
    m = get_metric(metric)
    if not m.supports_rect_bounds:
        raise ValueError(f"metric {m.name!r} has no exact rectangle bounds")
    mind = m.rect_mindist_many
    maxd = m.rect_maxdist_many
    if mind is None:
        scalar_min = m.rect_mindist

        def mind(points, lo, hi):  # pragma: no cover - custom metrics only
            return np.array(
                [scalar_min(points[i], lo[i], hi[i]) for i in range(len(points))],
                dtype=np.float64,
            )

    if maxd is None:
        scalar_max = m.rect_maxdist

        def maxd(points, lo, hi):  # pragma: no cover - custom metrics only
            return np.array(
                [scalar_max(points[i], lo[i], hi[i]) for i in range(len(points))],
                dtype=np.float64,
            )

    return mind, maxd


class FlatTree:
    """Structure-of-arrays image of a ``TreeNode`` hierarchy (BFS order).

    Node 0 is the root; the children of any node occupy a contiguous id
    range ``child_start .. child_start + child_count`` and every level is a
    contiguous id range (recorded in ``levels``), which is what lets the
    batched engine advance whole ``(query, node)`` pair arrays one level per
    Python step and annotate ``maxrho`` bottom-up with one ``reduceat`` per
    level.  ``root`` keeps the source node so index re-fits invalidate the
    cached flattening by identity; ``nodes`` (when present) is the ``TreeNode``
    list in flat-id order, which is how the per-run ``maxrho`` annotation
    scatters the vectorised :func:`flat_tree_maxrho` values back onto the
    object graph for the per-object reference frontiers.

    Images come from two producers: :func:`flatten_tree` (the object-graph
    path) and the direct bulk builders in :mod:`repro.indexes.build`, which
    construct these arrays straight from the point array without ever
    materialising a ``TreeNode`` graph.
    """

    __slots__ = (
        "root", "nodes", "lo", "hi", "nc", "child_start", "child_count", "parent",
        "leaf_start", "leaf_size", "leaf_ids", "leaf_node_of",
        "levels", "n_nodes",
    )

    #: The array-valued slots, in a fixed order (shared-memory export).
    ARRAY_FIELDS = (
        "lo", "hi", "nc", "child_start", "child_count", "parent",
        "leaf_start", "leaf_size", "leaf_ids", "leaf_node_of",
    )

    def nbytes(self) -> int:
        """Resident size of the flat arrays (for index memory accounting)."""
        return sum(getattr(self, name).nbytes for name in self.ARRAY_FIELDS)

    def as_arrays(self) -> dict:
        """The flat image as a plain ``{field: ndarray}`` dict.

        This is what the process execution backend publishes into shared
        memory: the whole tree crosses the process boundary as ten numpy
        buffers plus the tiny ``levels`` list (picklable metadata), never as
        the linked ``TreeNode`` graph.
        """
        return {name: getattr(self, name) for name in self.ARRAY_FIELDS}

    @classmethod
    def from_arrays(cls, arrays, levels, n_nodes: int) -> "FlatTree":
        """Rebuild a :class:`FlatTree` from :meth:`as_arrays` output.

        ``root`` is left ``None`` — a reconstructed image has no source
        ``TreeNode`` graph (worker processes never need one).
        """
        flat = cls()
        flat.root = None
        flat.nodes = None
        flat.levels = [tuple(level) for level in levels]
        flat.n_nodes = int(n_nodes)
        for name in cls.ARRAY_FIELDS:
            setattr(flat, name, arrays[name])
        return flat


def flatten_tree(root) -> FlatTree:
    """Flatten a ``TreeNode`` tree into :class:`FlatTree` arrays (one pass)."""
    nodes = [root]
    levels = []
    start, stop = 0, 1
    while start < stop:
        levels.append((start, stop))
        for i in range(start, stop):
            children = nodes[i].children
            if children is not None:
                nodes.extend(children)
        start, stop = stop, len(nodes)
    n_nodes = len(nodes)
    dim = len(root.lo)
    flat = FlatTree()
    flat.root = root
    flat.nodes = nodes
    flat.n_nodes = n_nodes
    flat.levels = levels
    flat.lo = np.empty((n_nodes, dim), dtype=np.float64)
    flat.hi = np.empty((n_nodes, dim), dtype=np.float64)
    flat.nc = np.empty(n_nodes, dtype=np.int64)
    flat.child_start = np.zeros(n_nodes, dtype=np.int64)
    flat.child_count = np.zeros(n_nodes, dtype=np.int64)
    flat.leaf_start = np.zeros(n_nodes, dtype=np.int64)
    flat.leaf_size = np.zeros(n_nodes, dtype=np.int64)
    leaf_parts = []
    child_pos = 1  # node 0 is the root; its children start right after it
    leaf_pos = 0
    flat.parent = np.zeros(n_nodes, dtype=np.int64)  # root points at itself
    for i, node in enumerate(nodes):
        flat.lo[i] = node.lo
        flat.hi[i] = node.hi
        flat.nc[i] = node.nc
        if node.children is not None:
            flat.child_start[i] = child_pos
            flat.child_count[i] = len(node.children)
            flat.parent[child_pos : child_pos + len(node.children)] = i
            child_pos += len(node.children)
        elif node.ids is not None and len(node.ids):
            flat.leaf_start[i] = leaf_pos
            flat.leaf_size[i] = len(node.ids)
            leaf_pos += len(node.ids)
            leaf_parts.append(np.asarray(node.ids, dtype=np.int64))
    flat.leaf_ids = (
        np.concatenate(leaf_parts) if leaf_parts else np.empty(0, dtype=np.int64)
    )
    # Inverse of the leaf partition: the leaf node holding each object.
    # Seeds every δ query with its own leaf, the tree analogue of the grid's
    # home cell (the traversal then starts with a near-final radius).
    flat.leaf_node_of = np.empty(len(flat.leaf_ids), dtype=np.int64)
    leafy = np.flatnonzero(flat.leaf_size > 0)
    flat.leaf_node_of[flat.leaf_ids] = np.repeat(leafy, flat.leaf_size[leafy])
    return flat


def flat_tree_maxrho(flat: FlatTree, rho_rows: np.ndarray) -> np.ndarray:
    """Per-node subtree-max densities for every density order at once.

    The vectorised analogue of the per-node ``maxrho`` annotation pass:
    leaves reduce their member densities with one ``maximum.reduceat`` over
    the concatenated leaf ids, then each level folds its children bottom-up
    with one ``reduceat`` per level (children of a level's internal nodes
    are contiguous by BFS construction).  Returns ``(n_orders, n_nodes)``.
    """
    rho_rows = np.asarray(rho_rows, dtype=np.float64)
    maxrho = np.full((len(rho_rows), flat.n_nodes), -np.inf, dtype=np.float64)
    nonempty = flat.leaf_size > 0
    if nonempty.any():
        vals = rho_rows[:, flat.leaf_ids]
        maxrho[:, nonempty] = np.maximum.reduceat(
            vals, flat.leaf_start[nonempty], axis=1
        )
    for level_start, level_stop in reversed(flat.levels[:-1]):
        counts = flat.child_count[level_start:level_stop]
        internal = np.flatnonzero(counts > 0)
        if len(internal) == 0:
            continue
        parents = internal + level_start
        starts = flat.child_start[parents]
        first = int(starts[0])
        last = int(starts[-1] + flat.child_count[parents[-1]])
        maxrho[:, parents] = np.maximum.reduceat(
            maxrho[:, first:last], starts - first, axis=1
        )
    return maxrho


def _resolve_pairs(
    rows: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    ids_flat: np.ndarray,
    points: np.ndarray,
    qpts: np.ndarray,
    qord: np.ndarray,
    key_q: np.ndarray,
    key_rows: np.ndarray,
    pair_fn,
    stats,
    best_d: np.ndarray,
    best_id: np.ndarray,
    radius: np.ndarray,
) -> None:
    """Resolve a batch of (query, leaf/cell) pairs in place.

    Each pair scans its candidate segment ``ids_flat[starts:starts+sizes]``
    for the lexicographically smallest ``(distance, id)`` among *denser*
    objects — the reference path's ``np.lexsort((cand, d))[0]`` — and merges
    per query into ``(best_d, best_id)``, tightening ``radius`` alongside.
    """
    nz = sizes > 0
    if not nz.all():
        rows, starts, sizes = rows[nz], starts[nz], sizes[nz]
    if len(rows) == 0:
        return
    flat, seg_off = _expand_csr(starts, sizes)
    cand = ids_flat[flat]
    rflat = np.repeat(rows, sizes)
    if len(key_rows) == 1:  # single density order: skip the qord gather
        denser = key_rows[0, cand] < key_q[rflat]
    else:
        denser = key_rows[qord[rflat], cand] < key_q[rflat]
    stats.objects_scanned += len(cand)
    # Distances only for denser candidates (the reference's candidate
    # filter); segments re-based on the surviving counts.
    kept = np.add.reduceat(denser.astype(np.int64), seg_off)
    found = kept > 0
    if not found.any():
        return
    cand, rflat = cand[denser], rflat[denser]
    rows, sizes = rows[found], kept[found]
    seg_off = np.cumsum(sizes) - sizes
    d = pair_fn(qpts[rflat], points[cand])
    stats.distance_evals += len(cand)
    dmin = np.minimum.reduceat(d, seg_off)
    # Ids tied at the segment minimum, reduced to the smallest.
    cand_at_min = np.where(d == np.repeat(dmin, sizes), cand, len(points))
    idmin = np.minimum.reduceat(cand_at_min, seg_off)
    # Several pairs may serve one query in the same batch: keep the
    # lexicographic (distance, id) minimum per query.
    order = np.lexsort((idmin, dmin, rows))
    rows, dmin, idmin = rows[order], dmin[order], idmin[order]
    first = np.ones(len(rows), dtype=bool)
    first[1:] = rows[1:] != rows[:-1]
    rows, dmin, idmin = rows[first], dmin[first], idmin[first]
    upd = (dmin < best_d[rows]) | ((dmin == best_d[rows]) & (idmin < best_id[rows]))
    if upd.any():
        rows, dmin, idmin = rows[upd], dmin[upd], idmin[upd]
        best_d[rows] = dmin
        best_id[rows] = idmin
        radius[rows] = np.minimum(radius[rows], dmin)


def tree_delta_batched(
    flat: FlatTree,
    points: np.ndarray,
    qid: np.ndarray,
    qord: np.ndarray,
    rho_rows: np.ndarray,
    key_rows: np.ndarray,
    metric,
    stats,
    density_pruning: bool = True,
    distance_pruning: bool = True,
    maxrho: "np.ndarray | None" = None,
    own_leaf: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Frontier-batched best-first δ search over a flattened spatial tree.

    Parameters
    ----------
    flat:
        :func:`flatten_tree` image of the index's root (cached per fit).
    qid, qord:
        ``(m,)`` query object ids and, per query, the density-order row it
        belongs to — one engine run can serve a whole multi-``dc`` sweep.
        Global peaks must be excluded (handled by :func:`peak_delta_sweep`).
    rho_rows:
        ``(n_orders, n)`` densities (Lemma-1 pruning against ``maxrho``).
    key_rows:
        ``(n_orders, n)`` total-order keys: ``q`` is denser than ``p`` iff
        ``key[q] < key[p]`` (:func:`density_order_key`).
    metric, stats:
        The index's :class:`~repro.geometry.distance.Metric` and its
        :class:`~repro.indexes.base.IndexStats` (batched counter semantics —
        module docstring).
    density_pruning, distance_pruning:
        Lemma 1 / Lemma 2 ablation knobs; disabling changes *work*, never
        results.
    maxrho:
        Optional precomputed :func:`flat_tree_maxrho` rows aligned with
        ``rho_rows`` — a multi-``dc`` sweep annotates every order in one
        pass and hands each engine run its row.  Computed here when absent.
    own_leaf:
        Optional per-query containing-leaf node ids overriding the default
        ``flat.leaf_node_of[qid]`` lookup; ``-1`` marks a query that is not
        a member of this image (a delta-segment query against the base
        image, or vice versa), for which the own-leaf/sibling seeding is
        skipped.  Seeding only affects pruning, never results.

    Returns
    -------
    ``(delta, mu)`` of shape ``(m,)``, aligned with ``qid`` — bit-identical
    to running the per-object reference search per query.
    """
    qid = np.asarray(qid, dtype=np.int64)
    qord = np.asarray(qord, dtype=np.int64)
    m = len(qid)
    best_d = np.full(m, np.inf, dtype=np.float64)
    best_id = np.full(m, NO_NEIGHBOR, dtype=np.int64)
    if m == 0:
        return best_d, best_id
    if maxrho is None:
        maxrho = flat_tree_maxrho(flat, rho_rows)
    mind_pairs, maxd_pairs = _pair_rect_bounds(metric)

    def pair_fn(a, b):
        return paired_distances(a, b, metric)

    qpts = points[qid]
    rho_q = rho_rows[qord, qid]
    key_q = key_rows[qord, qid]
    # Pruning radius per query: min(best candidate so far, ub), where ub is
    # the sound upper bound from nodes whose maxrho is *strictly* above ρ(p)
    # (they certainly contain a denser object, so their maxdist bounds δ).
    # Pruning always compares with strict '>', so equal-distance candidates
    # stay reachable for the smaller-id tie-break.
    radius = np.full(m, np.inf, dtype=np.float64)

    seeded_parent = None
    if not distance_pruning:
        own_leaf = None
    else:
        # Seed every query with its own containing leaf: most objects find
        # their nearest denser neighbour inside it, so the traversal starts
        # with a near-final radius and Lemma 2 collapses the upper levels.
        # The traversal skips the seeded leaf (already fully resolved).
        # Rows whose own_leaf is -1 (non-members of this image) skip the
        # seeding and resolve through the plain traversal.
        if own_leaf is None:
            own_leaf = flat.leaf_node_of[qid]
        else:
            own_leaf = np.asarray(own_leaf, dtype=np.int64)
        seeded = np.flatnonzero(own_leaf >= 0)
        if len(seeded):
            _resolve_pairs(
                seeded,
                flat.leaf_start[own_leaf[seeded]], flat.leaf_size[own_leaf[seeded]],
                flat.leaf_ids, points, qpts, qord, key_q, key_rows,
                pair_fn, stats, best_d, best_id, radius,
            )
        # Queries densest within their own leaf still have an infinite
        # radius and would cascade through the whole upper tree; a second
        # hop over the leaf's (leaf-)siblings resolves almost all of them.
        need = np.flatnonzero(np.isinf(radius) & (own_leaf >= 0))
        if len(need):
            sib_parent = flat.parent[own_leaf[need]]
            counts = flat.child_count[sib_parent]
            sibling, _ = _expand_csr(flat.child_start[sib_parent], counts)
            sib_row = np.repeat(need, counts)
            fresh = (flat.child_count[sibling] == 0) & (
                sibling != own_leaf[sib_row]
            )
            _resolve_pairs(
                sib_row[fresh],
                flat.leaf_start[sibling[fresh]], flat.leaf_size[sibling[fresh]],
                flat.leaf_ids, points, qpts, qord, key_q, key_rows,
                pair_fn, stats, best_d, best_id, radius,
            )
            # The traversal must not re-scan the leaf siblings resolved
            # here; remember the seeded parent per query.
            seeded_parent = np.full(m, -1, dtype=np.int64)
            seeded_parent[need] = sib_parent

    pair_node = np.zeros(m, dtype=np.int64)  # everyone starts at the root
    pair_row = np.arange(m, dtype=np.int64)
    pair_dmin = np.zeros(m, dtype=np.float64)
    while len(pair_node):
        if distance_pruning:
            # Re-check on arrival: the radius may have tightened since the
            # pair was enqueued (Lemma 2, the reference's stale-entry check).
            keep = pair_dmin <= radius[pair_row]
            stats.nodes_pruned_distance += int(len(keep) - keep.sum())
            pair_node = pair_node[keep]
            pair_row = pair_row[keep]
            pair_dmin = pair_dmin[keep]
            if len(pair_node) == 0:
                break
        stats.nodes_visited += len(pair_node)
        is_leaf = flat.child_count[pair_node] == 0
        if is_leaf.any():
            leaf_node = pair_node[is_leaf]
            leaf_row = pair_row[is_leaf]
            leaf_dmin = pair_dmin[is_leaf]
            if own_leaf is not None:  # seeded leaves are already resolved
                fresh = leaf_node != own_leaf[leaf_row]
                if seeded_parent is not None:
                    fresh &= flat.parent[leaf_node] != seeded_parent[leaf_row]
                leaf_node = leaf_node[fresh]
                leaf_row = leaf_row[fresh]
                leaf_dmin = leaf_dmin[fresh]
            if distance_pruning and len(leaf_node):
                # Wave-based resolution emulates the reference's best-first
                # ordering: each wave resolves every query's nearest
                # still-unresolved leaf, then re-prunes its remaining leaves
                # with the tightened radius.  A few waves kill almost all
                # surviving pairs; the small remainder resolves in one go.
                order = np.lexsort((leaf_dmin, leaf_row))
                leaf_node = leaf_node[order]
                leaf_row = leaf_row[order]
                leaf_dmin = leaf_dmin[order]
                for _wave in range(3):
                    if len(leaf_node) == 0:
                        break
                    nearest = np.ones(len(leaf_row), dtype=bool)
                    nearest[1:] = leaf_row[1:] != leaf_row[:-1]
                    _resolve_pairs(
                        leaf_row[nearest],
                        flat.leaf_start[leaf_node[nearest]],
                        flat.leaf_size[leaf_node[nearest]],
                        flat.leaf_ids, points, qpts, qord, key_q, key_rows,
                        pair_fn, stats, best_d, best_id, radius,
                    )
                    rest = ~nearest
                    keep = leaf_dmin[rest] <= radius[leaf_row[rest]]
                    stats.nodes_pruned_distance += int(len(keep) - keep.sum())
                    leaf_node = leaf_node[rest][keep]
                    leaf_row = leaf_row[rest][keep]
                    leaf_dmin = leaf_dmin[rest][keep]
            _resolve_pairs(
                leaf_row,
                flat.leaf_start[leaf_node], flat.leaf_size[leaf_node],
                flat.leaf_ids, points, qpts, qord, key_q, key_rows,
                pair_fn, stats, best_d, best_id, radius,
            )
        pair_node, pair_row = pair_node[~is_leaf], pair_row[~is_leaf]
        if len(pair_node) == 0:
            break
        # Expand every pair to its children (contiguous ids by construction).
        counts = flat.child_count[pair_node]
        child_node, _ = _expand_csr(flat.child_start[pair_node], counts)
        child_row = np.repeat(pair_row, counts)
        if len(maxrho) == 1:  # single density order: skip the qord gather
            child_maxrho = maxrho[0, child_node]
        else:
            child_maxrho = maxrho[qord[child_row], child_node]
        child_rho = rho_q[child_row]
        child_dmin = mind_pairs(
            qpts[child_row], flat.lo[child_node], flat.hi[child_node]
        )
        # Both lemmas evaluated on the full pair array, one filter pass
        # (cheap vector arithmetic beats repeated boolean gathers).
        keep = None
        if density_pruning:
            alive = child_maxrho >= child_rho  # Lemma 1
            stats.nodes_pruned_density += int(len(alive) - alive.sum())
            keep = alive
        if distance_pruning:
            ok = child_dmin <= radius[child_row]  # Lemma 2
            if keep is None:
                stats.nodes_pruned_distance += int(len(ok) - ok.sum())
                keep = ok
            else:
                # Reference ordering: distance pruning only examines the
                # density survivors.
                stats.nodes_pruned_distance += int((keep & ~ok).sum())
                keep &= ok
        if keep is not None:
            child_node = child_node[keep]
            child_row = child_row[keep]
            child_dmin = child_dmin[keep]
        if distance_pruning:
            sure = child_maxrho[keep] > child_rho[keep] if keep is not None else (
                child_maxrho > child_rho
            )
            if sure.any():
                sure_row = child_row[sure]
                dmax = maxd_pairs(
                    qpts[sure_row], flat.lo[child_node[sure]], flat.hi[child_node[sure]]
                )
                np.minimum.at(radius, sure_row, dmax)
        pair_node, pair_row, pair_dmin = child_node, child_row, child_dmin
    return best_d, best_id


def grid_delta_batched(
    points: np.ndarray,
    qid: np.ndarray,
    qord: np.ndarray,
    rho_rows: np.ndarray,
    key_rows: np.ndarray,
    cell_maxrho_rows: np.ndarray,
    offsets: np.ndarray,
    ids_sorted: np.ndarray,
    cell_of: np.ndarray,
    grid_lo: np.ndarray,
    cell_w: float,
    shape: Tuple[int, int],
    metric,
    stats,
    qcell: "np.ndarray | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expanding-ring cell-batched δ search over a uniform grid.

    The grid analogue of :func:`tree_delta_batched`, ring-synchronous: every
    iteration advances *all* still-unresolved queries one ring outward.  The
    ring-``r`` candidate cells of every query are expanded into one flat
    ``(query, cell)`` pair array, pruned with Lemma 1 (per-cell ``maxrho``
    rows) and Lemma 2 (vectorised cell ``mindist`` against each query's
    current best), and the survivors resolve their cell members through the
    same paired-distance segment reduction the tree leaves use.  A query
    leaves the schedule exactly when the scalar reference would stop its
    ring loop — ``(r - 1)·w`` exceeding its candidate δ, or its ring lying
    entirely outside the grid — so results (δ, μ, smaller-id ties) are
    bit-identical.

    Parameters mirror :class:`~repro.indexes.grid.GridIndex` internals: CSR
    ``(offsets, ids_sorted)`` cell membership, ``cell_of`` flat home cells,
    ``grid_lo`` / ``cell_w`` / ``shape`` geometry, and ``cell_maxrho_rows``
    of shape ``(n_orders, nx · ny)``.

    ``qcell`` overrides the ``cell_of`` home-cell lookup for queries that
    are not members of this grid image (delta-segment queries against the
    base CSR, or vice versa): a full-length array of per-point home cells,
    clamped into the grid.  Ring expansion from a clamped home stays exact:
    every stored candidate lies inside the grid rectangle, so per-axis
    clamping of the query can only shrink its distance to a candidate —
    a ring-``r`` cell is still at least ``(r-1)·w`` away from the query.
    """
    qid = np.asarray(qid, dtype=np.int64)
    qord = np.asarray(qord, dtype=np.int64)
    m = len(qid)
    best_d = np.full(m, np.inf, dtype=np.float64)
    best_id = np.full(m, NO_NEIGHBOR, dtype=np.int64)
    if m == 0:
        return best_d, best_id
    mind_pairs, _maxd_pairs = _pair_rect_bounds(metric)
    cr = getattr(get_metric(metric), "coord_radius", None)

    def pair_fn(a, b):
        return paired_distances(a, b, metric)

    nx, ny = shape
    w = float(cell_w)
    sizes_all = np.diff(offsets)
    qpts = points[qid]
    rho_q = rho_rows[qord, qid]
    key_q = key_rows[qord, qid]
    home = (cell_of if qcell is None else qcell)[qid]
    hx, hy = home // ny, home % ny
    max_ring = max(nx, ny)

    active = np.arange(m, dtype=np.int64)
    for r in range(max_ring + 1):
        if r > 0:
            bd = best_d[active]
            # Ring-level Lemma 2: any ring-r cell is at least (r-1)·w away
            # in coordinate units; compare against the candidate δ's
            # coordinate radius (identity for coordinate-valued metrics).
            bd_coord = bd if cr is None else cr(bd)
            done = (bd < np.inf) & ((r - 1) * w > bd_coord)
            # A ring entirely outside the grid ends the reference loop too.
            outside = (
                (hx[active] - r < 0) & (hx[active] + r >= nx)
                & (hy[active] - r < 0) & (hy[active] + r >= ny)
            )
            active = active[~(done | outside)]
            if len(active) == 0:
                break
        if r == 0:
            dx = np.zeros(1, dtype=np.int64)
            dy = np.zeros(1, dtype=np.int64)
        else:
            span = np.arange(-r, r + 1, dtype=np.int64)
            inner = np.arange(-r + 1, r, dtype=np.int64)
            dx = np.concatenate(
                [span, span, np.full(len(inner), -r), np.full(len(inner), r)]
            )
            dy = np.concatenate(
                [np.full(len(span), -r), np.full(len(span), r), inner, inner]
            )
        qrep = np.repeat(active, len(dx))
        cx = hx[qrep] + np.tile(dx, len(active))
        cy = hy[qrep] + np.tile(dy, len(active))
        in_bounds = (cx >= 0) & (cx < nx) & (cy >= 0) & (cy < ny)
        qrep, cx, cy = qrep[in_bounds], cx[in_bounds], cy[in_bounds]
        if len(qrep) == 0:
            continue
        cell = cx * ny + cy
        occupied = sizes_all[cell] > 0
        qrep, cell, cx, cy = qrep[occupied], cell[occupied], cx[occupied], cy[occupied]
        if len(qrep) == 0:
            continue
        if len(cell_maxrho_rows) == 1:
            alive = cell_maxrho_rows[0, cell] >= rho_q[qrep]  # Lemma 1
        else:
            alive = cell_maxrho_rows[qord[qrep], cell] >= rho_q[qrep]  # Lemma 1
        stats.nodes_pruned_density += int(len(alive) - alive.sum())
        qrep, cell, cx, cy = qrep[alive], cell[alive], cx[alive], cy[alive]
        if len(qrep) == 0:
            continue
        # Same box arithmetic as GridIndex._cell_box, per pair.
        clo = grid_lo[None, :] + np.stack([cx, cy], axis=1) * w
        ok = mind_pairs(qpts[qrep], clo, clo + w) <= best_d[qrep]  # Lemma 2
        stats.nodes_pruned_distance += int(len(ok) - ok.sum())
        qrep, cell = qrep[ok], cell[ok]
        if len(qrep) == 0:
            continue
        stats.nodes_visited += len(qrep)
        _resolve_pairs(
            qrep, offsets[cell], sizes_all[cell], ids_sorted,
            points, qpts, qord, key_q, key_rows,
            pair_fn, stats, best_d, best_id, best_d,
        )
    return best_d, best_id


def grid_rho_batched(
    points: np.ndarray,
    qid: "np.ndarray | None",
    dc: float,
    w: float,
    grid_lo: np.ndarray,
    shape: Tuple[int, int],
    offsets: np.ndarray,
    ids_sorted: np.ndarray,
    cell_of: np.ndarray,
    metric,
    stats,
    qcell: "np.ndarray | None" = None,
) -> np.ndarray:
    """Cell-batched Observation-1 ρ over a uniform grid.

    The grid analogue of :func:`tree_rho_batched`: query points are grouped
    by home cell, every candidate cell classifies for the whole group with
    the batched rectangle bounds — per-point classifications (results *and*
    probe counters) are identical to the scalar formulation.

    ``qid`` restricts the evaluation to a query subset (default: all
    objects); counts come back aligned with it.  Each query's candidate
    cell range, classification sequence and counter contributions depend
    only on the query itself, so sharding over ``qid`` chunks is
    bit-identical to one whole-table call — the execution-backend contract.

    ``qcell`` supports queries that are *not* members of this grid image
    (delta-segment points queried against the base CSR, or vice versa): a
    full-length array of per-point grouping cells — typically the clamped
    home cell — used instead of the member-cell grouping.  Candidate cell
    ranges always come from the query coordinates, so the grouping choice
    affects locality only, never results.

    Parameters mirror :class:`~repro.indexes.grid.GridIndex` internals: CSR
    ``(offsets, ids_sorted)`` cell membership and the ``grid_lo`` /
    ``w`` / ``shape`` geometry.
    """
    n = len(points)
    dc = float(dc)
    w = float(w)
    nx, ny = shape
    offsets = np.asarray(offsets, dtype=np.int64)
    mind_many, maxd_many = rect_bounds_many(metric)
    cross = get_metric(metric).cross

    # Per-point candidate cell ranges — the same floor arithmetic the
    # scalar query used, evaluated for all points at once.  The window is
    # in coordinate units: a metric whose values are not coordinate
    # distances (sqeuclidean) converts dc through its coord_radius.
    cr = getattr(get_metric(metric), "coord_radius", None)
    reach = dc if cr is None else float(cr(dc))
    lo = grid_lo
    ix0 = np.maximum((points[:, 0] - reach - lo[0]) // w, 0).astype(np.int64)
    ix1 = np.minimum((points[:, 0] + reach - lo[0]) // w, nx - 1).astype(np.int64)
    iy0 = np.maximum((points[:, 1] - reach - lo[1]) // w, 0).astype(np.int64)
    iy1 = np.minimum((points[:, 1] + reach - lo[1]) // w, ny - 1).astype(np.int64)

    # Restricting to a query subset visits only the subset's own home
    # cells (cell-sorted chunks touch a contiguous cell range, so a shard
    # pays for its cells alone, not a full occupied-cell sweep).
    if qcell is not None:
        # External-query grouping: the queries need not be CSR members, so
        # group them by their provided grouping cell directly.  Grouping
        # only batches work; each query's candidate ranges and
        # classifications are its own either way.
        qsel = (
            np.asarray(qid, dtype=np.int64)
            if qid is not None
            else np.arange(n, dtype=np.int64)
        )
        if len(qsel):
            order = np.argsort(qcell[qsel], kind="stable")
            qsel = qsel[order]
            cells = qcell[qsel]
            starts = np.flatnonzero(np.r_[True, cells[1:] != cells[:-1]])
            stops = np.append(starts[1:], len(qsel))
            groups = [qsel[a:b] for a, b in zip(starts, stops)]
        else:
            groups = iter(())
    else:
        in_sel = None
        if qid is not None:
            qid = np.asarray(qid, dtype=np.int64)
            in_sel = np.zeros(n, dtype=bool)
            in_sel[qid] = True
            occupied = np.unique(cell_of[qid])
        else:
            occupied = np.flatnonzero(np.diff(offsets) > 0)

        def _member_groups():
            for home in occupied:
                members = ids_sorted[offsets[home] : offsets[home + 1]]
                if in_sel is not None:
                    members = members[in_sel[members]]
                    if len(members) == 0:
                        continue
                yield members

        groups = _member_groups()

    counts = np.zeros(n, dtype=np.int64)
    for members in groups:
        mx0, mx1 = ix0[members], ix1[members]
        my0, my1 = iy0[members], iy1[members]
        for fx in range(int(mx0.min()), int(mx1.max()) + 1):
            base = fx * ny
            for fy in range(int(my0.min()), int(my1.max()) + 1):
                flat = base + fy
                start, stop = offsets[flat], offsets[flat + 1]
                if start == stop:
                    continue
                sel = (mx0 <= fx) & (fx <= mx1) & (my0 <= fy) & (fy <= my1)
                if not sel.any():
                    continue
                rows = members[sel]
                stats.nodes_visited += len(rows)
                # Same box arithmetic as GridIndex._cell_box.
                clo = lo + np.array([fx * w, fy * w])
                chi = clo + w
                rpts = points[rows]
                alive = mind_many(rpts, clo, chi) < dc
                if not alive.any():
                    continue
                rows = rows[alive]
                rpts = rpts[alive]
                contained = maxd_many(rpts, clo, chi) < dc
                if contained.any():
                    counts[rows[contained]] += int(stop - start)
                    stats.nodes_contained += int(contained.sum())
                rest = rows[~contained]
                if len(rest):
                    d = cross(rpts[~contained], points[ids_sorted[start:stop]])
                    stats.distance_evals += d.size
                    counts[rest] += (d < dc).sum(axis=1)
    counts -= 1  # remove the self-count, as in the tree indexes
    return counts if qid is None else counts[qid]


def tree_rho_batched(
    flat: FlatTree,
    points: np.ndarray,
    dc: float,
    metric,
    stats,
    qid: "np.ndarray | None" = None,
) -> np.ndarray:
    """Batched Algorithm 5 (ρ query) over a flattened spatial tree.

    The level-synchronous counterpart of :func:`tree_delta_batched`: all
    ``(query, node)`` pairs of a tree level classify against Observation 1
    in single vectorised passes — *discarded* (``dmin ≥ dc``), *fully
    contained* (``dmax < dc``, the subtree count ``nc`` is added wholesale)
    or *intersected* (expand / scan the leaf).  Every pair performs exactly
    the per-point classification of the scalar traversal, so counts and the
    probe counters match the per-object formulation.

    ``qid`` restricts the traversal to a query subset (default: all
    objects), returning counts aligned with it — each query's
    classification sequence is untouched by which other queries share the
    batch, which is what lets the execution backends shard this function
    over chunks with bit-identical results and counter totals.
    """
    dc = float(dc)
    if qid is None:
        qpts = points
    else:
        qpts = points[np.asarray(qid, dtype=np.int64)]
    m = len(qpts)
    counts = np.zeros(m, dtype=np.int64)
    mind_pairs, maxd_pairs = _pair_rect_bounds(metric)

    def pair_fn(a, b):
        return paired_distances(a, b, metric)

    pair_node = np.zeros(m, dtype=np.int64)  # every query starts at the root
    pair_row = np.arange(m, dtype=np.int64)
    while len(pair_node):
        stats.nodes_visited += len(pair_node)
        alive = mind_pairs(qpts[pair_row], flat.lo[pair_node], flat.hi[pair_node]) < dc
        pair_node, pair_row = pair_node[alive], pair_row[alive]
        if len(pair_node) == 0:
            break
        contained = (
            maxd_pairs(qpts[pair_row], flat.lo[pair_node], flat.hi[pair_node]) < dc
        )
        if contained.any():
            stats.nodes_contained += int(contained.sum())
            counts += np.rint(
                np.bincount(
                    pair_row[contained],
                    weights=flat.nc[pair_node[contained]],
                    minlength=m,
                )
            ).astype(np.int64)
            pair_node, pair_row = pair_node[~contained], pair_row[~contained]
            if len(pair_node) == 0:
                break
        is_leaf = flat.child_count[pair_node] == 0
        if is_leaf.any():
            leaf_node = pair_node[is_leaf]
            leaf_row = pair_row[is_leaf]
            sizes = flat.leaf_size[leaf_node]
            nz = sizes > 0
            if nz.any():
                leaf_row, sizes = leaf_row[nz], sizes[nz]
                flat_idx, seg_off = _expand_csr(flat.leaf_start[leaf_node[nz]], sizes)
                cand = flat.leaf_ids[flat_idx]
                d = pair_fn(qpts[np.repeat(leaf_row, sizes)], points[cand])
                stats.distance_evals += len(cand)
                within = np.add.reduceat((d < dc).astype(np.int64), seg_off)
                counts += np.rint(
                    np.bincount(leaf_row, weights=within, minlength=m)
                ).astype(np.int64)
        pair_node, pair_row = pair_node[~is_leaf], pair_row[~is_leaf]
        if len(pair_node) == 0:
            break
        child_count = flat.child_count[pair_node]
        pair_node, _ = _expand_csr(flat.child_start[pair_node], child_count)
        pair_row = np.repeat(pair_row, child_count)
    # Every query was counted inside its own query circle (dist 0 < dc);
    # Eq. 1 excludes the object itself.
    counts -= 1
    return counts
