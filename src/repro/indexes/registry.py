"""Name → index factory, so the harness and examples can say ``"rtree"``.

``make_index("ch", bin_width=0.2)`` instantiates the class with its keyword
parameters; ``available_indexes()`` lists what can be asked for.  Approximate
indexes require their τ explicitly — silently defaulting a truncation radius
would hide an accuracy decision from the user.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.indexes.base import DPCIndex
from repro.indexes.ch_index import CHIndex
from repro.indexes.grid import GridIndex
from repro.indexes.kdtree import KDTreeIndex
from repro.indexes.list_index import ListIndex
from repro.indexes.partition import PartitionedIndex
from repro.indexes.quadtree import QuadtreeIndex
from repro.indexes.rn_list import RNCHIndex, RNListIndex
from repro.indexes.rtree import RTreeIndex

__all__ = ["available_indexes", "make_index", "register_index", "INDEX_CLASSES"]

INDEX_CLASSES: Dict[str, Type[DPCIndex]] = {
    ListIndex.name: ListIndex,
    CHIndex.name: CHIndex,
    RNListIndex.name: RNListIndex,
    RNCHIndex.name: RNCHIndex,
    QuadtreeIndex.name: QuadtreeIndex,
    RTreeIndex.name: RTreeIndex,
    KDTreeIndex.name: KDTreeIndex,
    GridIndex.name: GridIndex,
    PartitionedIndex.name: PartitionedIndex,
}


def register_index(cls: Type[DPCIndex]) -> Type[DPCIndex]:
    """Register a custom index class under ``cls.name`` (decorator-friendly)."""
    if not issubclass(cls, DPCIndex):
        raise TypeError(f"{cls!r} is not a DPCIndex subclass")
    if cls.name in (None, "", "abstract"):
        raise ValueError(f"{cls.__name__} must define a concrete registry name")
    INDEX_CLASSES[cls.name] = cls
    return cls


def available_indexes() -> tuple:
    """Registered index names, sorted."""
    return tuple(sorted(INDEX_CLASSES))


def make_index(name: str, **params) -> DPCIndex:
    """Instantiate the index registered under ``name`` with ``params``."""
    try:
        cls = INDEX_CLASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown index {name!r}; available: {available_indexes()}"
        ) from None
    return cls(**params)
