"""Alternative density definitions for DPC (related-work extensions).

The paper's Section 6 surveys DPC variants that redefine local density:

* the original Science'14 paper itself suggests a **Gaussian kernel**
  density ``ρ(p) = Σ_q exp(-(dist(p,q)/dc)²)`` for small samples (it breaks
  the integer ties of the cut-off kernel);
* Wang & Song [27] build density from the **k nearest neighbours** — dense
  objects have close kNN — which removes the dc parameter from step 1
  entirely.

Both produce *real-valued* densities.  Everything downstream of ρ in this
package — :class:`~repro.core.quantities.DensityOrder`, every index's
``delta_all``, centre selection, assignment — is density-dtype-agnostic, so
these variants plug straight in::

    index = KDTreeIndex().fit(points)
    rho = gaussian_density(points, dc=0.5)
    q = variant_quantities(index, rho, dc=0.5)
    centers = select_centers_auto(q)

The δ query still benefits from the index (Lemma 1/2 pruning work verbatim
with float maxrho).  The kNN density is cheapest with a fitted
:class:`~repro.indexes.list_index.ListIndex`, where the kNN distances are
just the first ``k`` columns of the N-List.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantities import DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric, pairwise_blocks
from repro.indexes.base import DPCIndex
from repro.indexes.list_index import ListIndex

__all__ = ["gaussian_density", "knn_density", "variant_quantities"]


def gaussian_density(
    points: np.ndarray,
    dc: float,
    metric: "str | Metric" = "euclidean",
    block_rows: int = 1024,
) -> np.ndarray:
    """Gaussian-kernel density: ``ρ(p) = Σ_{q≠p} exp(-(dist(p,q)/dc)²)``.

    The soft analogue of the paper's Eq. 1 — every object contributes,
    weighted by proximity, so densities are virtually never tied.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got {points.shape}")
    if dc <= 0:
        raise ValueError(f"dc must be positive, got {dc}")
    n = len(points)
    rho = np.empty(n, dtype=np.float64)
    for start, stop, block in pairwise_blocks(points, metric, block_rows):
        contrib = np.exp(-((block / dc) ** 2))
        # Remove the self-contribution exp(0) = 1 on the diagonal slice.
        rho[start:stop] = contrib.sum(axis=1) - 1.0
    return rho


def knn_density(
    list_index: ListIndex,
    k: int,
    mode: str = "mean",
) -> np.ndarray:
    """kNN-based density (Wang & Song style): inverse of the kNN radius.

    Parameters
    ----------
    list_index:
        A fitted :class:`~repro.indexes.list_index.ListIndex`; the kNN
        distances are read straight off the sorted N-Lists.
    k:
        Number of neighbours.
    mode:
        ``"mean"`` — ``ρ(p) = 1 / mean(dist to k nearest)``;
        ``"max"``  — ``ρ(p) = 1 / dist to the k-th nearest`` (the kNN radius).

    Tied densities are possible only for exactly coincident neighbourhoods,
    so the id tie-break rarely engages — one of the variant's selling points.
    """
    if not isinstance(list_index, ListIndex):
        raise TypeError("knn_density reads N-Lists; pass a fitted ListIndex")
    dists = list_index.neighbor_dists  # raises if unfitted
    n, width = dists.shape
    if not (1 <= k <= width):
        raise ValueError(f"k must be in [1, {width}], got {k}")
    if mode == "mean":
        radius = dists[:, :k].mean(axis=1)
    elif mode == "max":
        radius = dists[:, k - 1].copy()
    else:
        raise ValueError(f"mode must be 'mean' or 'max', got {mode!r}")
    # Coincident points give radius 0 = infinite density; cap at the densest
    # resolvable scale instead of emitting inf (which would break gamma).
    positive = radius[radius > 0.0]
    floor = positive.min() * 1e-3 if len(positive) else 1.0
    return 1.0 / np.maximum(radius, floor)


def variant_quantities(
    index: DPCIndex,
    rho: np.ndarray,
    dc: float,
    tie_break: "str | TieBreak" = TieBreak.ID,
) -> DPCQuantities:
    """Assemble DPC quantities from an externally supplied density.

    ``delta``/``mu`` come from the index's pruned δ query, exactly as in the
    standard pipeline; ``dc`` is recorded for provenance (the kNN variant
    has no dc of its own — pass the value used downstream, e.g. for halo).
    """
    rho = np.asarray(rho, dtype=np.float64)
    if len(rho) != index.n:
        raise ValueError(f"rho has {len(rho)} entries, index holds {index.n} points")
    order = DensityOrder(rho, tie_break)
    delta, mu = index.delta_all(order)
    return DPCQuantities(dc=float(dc), rho=order.rho, delta=delta, mu=mu, density_order=order)
