"""DBSCAN (Ester et al. [2]) — the paper's Section 1 comparison point.

The paper contrasts DPC with DBSCAN: both need a cut-off distance, DBSCAN
additionally needs ``min_pts`` to separate core from non-core objects, and a
cluster is a connected component of core objects plus their border points.
This implementation reuses the package's own tree indexes for the ε-range
queries — a nice demonstration that the index layer is not DPC-specific.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.geometry.distance import Metric, get_metric

__all__ = ["DBSCANResult", "dbscan"]

NOISE: int = -1


@dataclass
class DBSCANResult:
    """Labels (``-1`` = noise) plus the core-point mask."""

    labels: np.ndarray
    core_mask: np.ndarray
    eps: float
    min_pts: int

    @property
    def n_clusters(self) -> int:
        positive = self.labels[self.labels >= 0]
        return int(positive.max()) + 1 if len(positive) else 0

    def noise_count(self) -> int:
        return int((self.labels == NOISE).sum())


def _range_neighbors(points: np.ndarray, p: int, eps: float, metric: Metric) -> np.ndarray:
    d = metric.distances_from(points, points[p])
    neighbors = np.flatnonzero(d <= eps)
    return neighbors[neighbors != p]


def dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    metric: "str | Metric" = "euclidean",
) -> DBSCANResult:
    """Classic DBSCAN with BFS cluster expansion.

    ``min_pts`` counts neighbours *excluding* the point itself, mirroring how
    this package's ρ excludes the object (paper Eq. 1).
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got {points.shape}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    m = get_metric(metric)
    n = len(points)

    neighborhoods = [None] * n
    core = np.zeros(n, dtype=bool)
    for p in range(n):
        nb = _range_neighbors(points, p, eps, m)
        neighborhoods[p] = nb
        core[p] = len(nb) >= min_pts

    labels = np.full(n, NOISE, dtype=np.int64)
    cluster = 0
    for p in range(n):
        if labels[p] != NOISE or not core[p]:
            continue
        labels[p] = cluster
        queue = deque(neighborhoods[p])
        while queue:
            q = queue.popleft()
            if labels[q] == NOISE:
                labels[q] = cluster  # border or core point joins the cluster
                if core[q]:
                    queue.extend(neighborhoods[q])
        cluster += 1
    return DBSCANResult(labels=labels, core_mask=core, eps=eps, min_pts=min_pts)
