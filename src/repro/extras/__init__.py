"""Reference algorithms for the paper's introductory comparisons.

Section 1 positions DPC against DBSCAN (the other major density-based
method) and against centroid-based clustering (k-means).  These small,
self-contained implementations back the comparison example; they are not
part of the paper's contribution.
"""

from repro.extras.dbscan import dbscan, DBSCANResult
from repro.extras.kmeans import kmeans, KMeansResult
from repro.extras.streaming import StreamingDPC
from repro.extras.variants import gaussian_density, knn_density, variant_quantities

__all__ = [
    "StreamingDPC",
    "dbscan",
    "DBSCANResult",
    "kmeans",
    "KMeansResult",
    "gaussian_density",
    "knn_density",
    "variant_quantities",
]
