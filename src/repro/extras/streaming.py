"""Streaming DPC: keep clustering as points arrive (extension).

The paper's real datasets are check-in streams, but its indexes are static.
This module adds the standard *amortised rebuild* (logarithmic / geometric
rebuilding) technique on top of any index: buffer arriving points, and
rebuild the index only when the buffer outgrows ``rebuild_factor`` times the
indexed size.  Between rebuilds, queries run over the index **plus** a
brute-force pass on the small buffer, so results remain *exact* at every
moment.

Cost: for n arrivals the index is rebuilt O(log_{f} n) times, so the total
construction work stays within a constant factor of one final build — while
every intermediate clustering is available.  Each rebuild fits a fresh index
through its construction path — the default tree families build their flat
query image directly via the vectorised bulk builders
(:mod:`repro.indexes.build`), which is what keeps the amortised rebuild (and
the serving snapshot publish it triggers) cheap.

This composes with every index; for the O(n²)-space list indexes the
rebuild-factor also bounds wasted construction work, which is why the class
defaults to a tree index.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.indexes.base import DPCIndex
from repro.indexes.rtree import RTreeIndex

__all__ = ["StreamingDPC"]


class StreamingDPC:
    """Exact DPC over an append-only point stream.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a fresh unfitted index
        (default: STR R-tree).
    rebuild_factor:
        Rebuild when ``buffered > rebuild_factor · indexed`` (and at least
        ``min_buffer`` points are buffered).  Smaller = fresher index, more
        rebuild work.
    min_buffer:
        Grace size below which no rebuild triggers (tiny streams would
        otherwise rebuild on every arrival).
    """

    def __init__(
        self,
        index_factory: Optional[Callable[[], DPCIndex]] = None,
        rebuild_factor: float = 0.5,
        min_buffer: int = 64,
    ):
        if rebuild_factor <= 0:
            raise ValueError(f"rebuild_factor must be positive, got {rebuild_factor}")
        if min_buffer < 1:
            raise ValueError(f"min_buffer must be >= 1, got {min_buffer}")
        self.index_factory = index_factory or (lambda: RTreeIndex())
        self.rebuild_factor = rebuild_factor
        self.min_buffer = min_buffer
        self._index: Optional[DPCIndex] = None
        self._indexed: Optional[np.ndarray] = None
        self._buffer: list = []
        self._rebuild_subscribers: list = []
        self.rebuild_count: int = 0

    @property
    def index(self) -> Optional[DPCIndex]:
        """The index over the stream as of the last rebuild (None before
        the first arrival).  Each rebuild produces a *fresh* index object —
        a handle obtained here is never refit in place, so snapshot readers
        keep a consistent view across rebuilds."""
        return self._index

    def subscribe_rebuild(self, callback: Callable[[DPCIndex], None]) -> Callable[[], None]:
        """Call ``callback(new_index)`` after every amortised rebuild.

        This is how the serving layer keeps a hot snapshot of a stream:
        :meth:`repro.serving.service.ClusteringService.attach_stream`
        registers a callback that atomically publishes the rebuilt index
        (and invalidates the replaced snapshot's cache entries).  Returns
        an unsubscribe function.
        """
        self._rebuild_subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._rebuild_subscribers:
                self._rebuild_subscribers.remove(callback)

        return unsubscribe

    # -- stream ingestion -----------------------------------------------------

    def add(self, points: np.ndarray) -> "StreamingDPC":
        """Append one point or a batch of points to the stream."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"expected (k, d) points, got shape {points.shape}")
        if self._indexed is not None and points.shape[1] != self._indexed.shape[1]:
            raise ValueError(
                f"dimension mismatch: stream is {self._indexed.shape[1]}-D, "
                f"got {points.shape[1]}-D"
            )
        self._buffer.extend(points)
        self._maybe_rebuild()
        return self

    @property
    def n(self) -> int:
        indexed = 0 if self._indexed is None else len(self._indexed)
        return indexed + len(self._buffer)

    @property
    def n_buffered(self) -> int:
        return len(self._buffer)

    def points(self) -> np.ndarray:
        """All stream points, indexed-first then buffer, as one array."""
        parts = []
        if self._indexed is not None:
            parts.append(self._indexed)
        if self._buffer:
            parts.append(np.asarray(self._buffer))
        if not parts:
            raise ValueError("the stream is empty")
        return np.concatenate(parts)

    def _maybe_rebuild(self) -> None:
        indexed = 0 if self._indexed is None else len(self._indexed)
        buffered = len(self._buffer)
        if buffered < self.min_buffer and indexed > 0:
            return
        if indexed == 0 or buffered > self.rebuild_factor * indexed:
            self._rebuild()

    def _rebuild(self) -> None:
        all_points = self.points()
        self._index = self.index_factory().fit(all_points)
        self._indexed = all_points
        self._buffer = []
        self.rebuild_count += 1
        for callback in tuple(self._rebuild_subscribers):
            callback(self._index)

    # -- exact queries over index + buffer -------------------------------------

    def quantities(
        self, dc: float, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> DPCQuantities:
        """Exact (ρ, δ, μ) over everything seen so far.

        The indexed prefix answers through the index; the buffered suffix,
        and its interactions with the prefix, are patched in by brute force
        (the buffer is small by construction).
        """
        if self.n == 0:
            raise ValueError("the stream is empty")
        if not self._buffer:
            return self._index.quantities(dc, tie_break)

        # Small buffer: simplest correct approach is one brute-force pass on
        # the combined set for rho-deltas that involve the buffer, reusing
        # the index for the (large) indexed part.
        points = self.points()
        metric = self._index.metric
        n_idx = len(self._indexed)
        buffer = points[n_idx:]

        rho = np.empty(len(points), dtype=np.int64)
        rho[:n_idx] = self._index.rho_all(dc)
        # Cross-contributions: indexed objects gain neighbours from the
        # buffer; buffered objects count against everything.
        cross = metric.cross(buffer, points)
        for i in range(len(buffer)):
            row = cross[i]
            rho[n_idx + i] = int((row < dc).sum()) - 1  # minus self
        idx_cross = cross[:, :n_idx] < dc
        rho[:n_idx] += idx_cross.sum(axis=0)

        order = DensityOrder(rho, tie_break)
        # δ must consider buffer objects as potential nearer denser
        # neighbours of indexed ones, so a fully index-based δ is no longer
        # valid; with a small buffer the dominant cost is the index part, so
        # patch via brute force over the combined matrix row by row in
        # blocks (exact, and still far cheaper than a full rebuild).
        from repro.core.baseline import naive_quantities

        return naive_quantities(points, dc, metric=metric, tie_break=tie_break, rho=rho)

    def cluster(self, dc: float, **kwargs):
        """Convenience: full DPC over the current stream contents.

        Accepts the same selection/halo keywords as
        :meth:`repro.indexes.DPCIndex.cluster`.
        """
        self._rebuild_if_stale_for_clustering()
        return self._index.cluster(dc, **kwargs)

    def _rebuild_if_stale_for_clustering(self) -> None:
        # cluster() goes through the index pipeline, so fold the buffer in
        # first; this keeps the amortised bound (the buffer was going to be
        # folded at the next threshold crossing anyway).
        if self._buffer or self._index is None:
            self._rebuild()
