"""Streaming DPC: keep clustering as points arrive (extension).

The paper's real datasets are check-in streams, but its indexes are static.
This module used to answer that with the classic *amortised rebuild*
(geometric rebuilding) technique — buffer arrivals, refit from scratch when
the buffer outgrows the index, brute-force-patch queries in between.  It now
rides the LSM-style delta segments the index families grew instead
(:meth:`repro.indexes.base.DPCIndex.add_points`): every batch folds into a
small sorted side image of the live index, queries merge the (base, delta)
pair at kernel time and stay **exact** at every moment, and the side image
compacts into the main image — a sorted-merge for the tree/grid families,
far cheaper than a refit — only when it outgrows ``rebuild_factor`` times
the base.

Cost: for n arrivals the base image compacts O(log_f n) times and each
ingest does O(batch) image-building work, so total maintenance stays within
a constant factor of one final build — while every intermediate clustering
is available without brute-force patching.

This composes with every index family; the list/CH indexes merge their
per-object sorted rows on every ingest (their ``delta_size`` stays 0), the
tree and grid families carry a real delta segment between compactions.

Beyond the exact full-stream quantities, the stream offers two *recency*
views for evolving data: :meth:`StreamingDPC.windowed_quantities` clusters
only the trailing window, and :meth:`StreamingDPC.decayed_quantities`
exponentially down-weights old arrivals in the density (a float ρ through
the same δ/μ machinery).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.baseline import naive_quantities
from repro.core.quantities import DPCQuantities, TieBreak
from repro.geometry.distance import pairwise_blocks
from repro.indexes.base import DPCIndex
from repro.indexes.rtree import RTreeIndex

__all__ = ["StreamingDPC"]


class StreamingDPC:
    """Exact DPC over an append-only point stream.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a fresh unfitted index
        (default: STR R-tree).
    rebuild_factor:
        Compact the delta segment into the base image when
        ``delta > rebuild_factor · base`` (and at least ``min_buffer``
        points are pending).  Smaller = tighter base image, more
        compaction work; queries are exact either way.
    min_buffer:
        Grace size below which no compaction triggers (tiny streams would
        otherwise compact on every arrival).
    """

    def __init__(
        self,
        index_factory: Optional[Callable[[], DPCIndex]] = None,
        rebuild_factor: float = 0.5,
        min_buffer: int = 64,
    ):
        if rebuild_factor <= 0:
            raise ValueError(f"rebuild_factor must be positive, got {rebuild_factor}")
        if min_buffer < 1:
            raise ValueError(f"min_buffer must be >= 1, got {min_buffer}")
        self.index_factory = index_factory or (lambda: RTreeIndex())
        self.rebuild_factor = rebuild_factor
        self.min_buffer = min_buffer
        self._index: Optional[DPCIndex] = None
        self._rebuild_subscribers: list = []
        self._ingest_subscribers: list = []
        self._points_cache: Optional[np.ndarray] = None
        self._quantities_cache: dict = {}
        self.rebuild_count: int = 0

    @property
    def index(self) -> Optional[DPCIndex]:
        """A frozen snapshot of the index over everything seen so far
        (None before the first arrival).  The live index mutates only by
        attribute rebinding, so the snapshot keeps answering for exactly
        its stream prefix while later batches ingest."""
        if self._index is None:
            return None
        return self._index.snapshot_copy()

    def subscribe_rebuild(self, callback: Callable[[DPCIndex], None]) -> Callable[[], None]:
        """Call ``callback(index_snapshot)`` after the initial fit and after
        every compaction.

        This is how the serving layer keeps a hot snapshot of a stream:
        :meth:`repro.serving.service.ClusteringService.attach_stream`
        registers a callback that atomically publishes the compacted index
        (and invalidates the replaced snapshot's cache entries).  Returns
        an unsubscribe function.
        """
        self._rebuild_subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._rebuild_subscribers:
                self._rebuild_subscribers.remove(callback)

        return unsubscribe

    def subscribe_ingest(
        self, callback: Callable[[DPCIndex, np.ndarray], None]
    ) -> Callable[[], None]:
        """Call ``callback(index_snapshot, new_points)`` after every delta
        ingest that did *not* trigger a compaction.

        Together with :meth:`subscribe_rebuild` this gives downstream
        consumers the full LSM event stream: small deltas arrive through
        here (the serving layer forwards them as
        :meth:`repro.serving.snapshots.SnapshotStore.publish_delta`), and
        compactions arrive as full-image rebuild events.  Returns an
        unsubscribe function.
        """
        self._ingest_subscribers.append(callback)

        def unsubscribe() -> None:
            if callback in self._ingest_subscribers:
                self._ingest_subscribers.remove(callback)

        return unsubscribe

    # -- stream ingestion -----------------------------------------------------

    def add(self, points: np.ndarray) -> "StreamingDPC":
        """Append one point or a batch of points to the stream."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"expected (k, d) points, got shape {points.shape}")
        if self._index is not None and points.shape[1] != self._index.points.shape[1]:
            raise ValueError(
                f"dimension mismatch: stream is {self._index.points.shape[1]}-D, "
                f"got {points.shape[1]}-D"
            )
        self._points_cache = None
        self._quantities_cache.clear()
        if self._index is None:
            self._index = self.index_factory().fit(points)
            self.rebuild_count += 1
            self._notify_rebuild()
            return self
        self._index.add_points(points)
        if not self._maybe_compact():
            for callback in tuple(self._ingest_subscribers):
                callback(self._index.snapshot_copy(), points)
        return self

    @property
    def n(self) -> int:
        return 0 if self._index is None else self._index.n

    @property
    def n_buffered(self) -> int:
        """Points currently living in the delta segment (0 right after a
        compaction, and always 0 for the merge-on-append list family)."""
        return 0 if self._index is None else self._index.delta_size

    def points(self) -> np.ndarray:
        """All stream points, in arrival order, as one array.

        The view is materialised once per ingest state and cached;
        :meth:`add` invalidates it.
        """
        if self._index is None:
            raise ValueError("the stream is empty")
        if self._points_cache is None:
            self._points_cache = self._index.points
        return self._points_cache

    def _maybe_compact(self) -> bool:
        delta = self._index.delta_size
        base = self._index.n - delta
        if delta < self.min_buffer:
            return False
        if delta > self.rebuild_factor * base:
            self._compact()
            return True
        return False

    def _compact(self) -> None:
        self._index.compact()
        self.rebuild_count += 1
        self._notify_rebuild()

    def _notify_rebuild(self) -> None:
        for callback in tuple(self._rebuild_subscribers):
            callback(self._index.snapshot_copy())

    # -- exact queries over the (base, delta) pair ------------------------------

    def quantities(
        self, dc: float, tie_break: "str | TieBreak" = TieBreak.ID
    ) -> DPCQuantities:
        """Exact (ρ, δ, μ) over everything seen so far.

        The delta-aware kernels answer over the (base, delta) image pair
        directly — no brute-force patching, no rebuild.  Results for a
        given ``(dc, tie_break)`` are cached until the next ingest.
        """
        if self._index is None:
            raise ValueError("the stream is empty")
        key = (float(dc), str(TieBreak.coerce(tie_break)))
        cached = self._quantities_cache.get(key)
        if cached is None:
            cached = self._index.quantities(dc, tie_break)
            self._quantities_cache[key] = cached
        return cached

    def cluster(self, dc: float, **kwargs):
        """Convenience: full DPC over the current stream contents.

        Compacts any pending delta first — clustering goes through the
        index pipeline, and the fold was going to happen at the next
        threshold crossing anyway.  Accepts the same selection/halo
        keywords as :meth:`repro.indexes.DPCIndex.cluster`.
        """
        if self._index is None:
            raise ValueError("the stream is empty")
        if self._index.delta_size:
            self._compact()
        return self._index.cluster(dc, **kwargs)

    # -- recency-weighted views --------------------------------------------------

    def windowed_quantities(
        self,
        dc: float,
        window: int,
        tie_break: "str | TieBreak" = TieBreak.ID,
    ) -> DPCQuantities:
        """Exact (ρ, δ, μ) over only the most recent ``window`` arrivals.

        The trailing window is its own clustering problem (row ``i`` of the
        result is stream point ``n - len(window) + i``); older points do
        not contribute density.  This is the hard-cut-off recency view —
        see :meth:`decayed_quantities` for the smooth one.
        """
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        pts = self.points()
        win = pts[-int(window):]
        if len(win) < 2:
            raise ValueError(
                f"window needs at least 2 stream points, have {len(win)}"
            )
        return naive_quantities(
            win, dc, metric=self._index.metric, tie_break=tie_break
        )

    def decayed_quantities(
        self,
        dc: float,
        half_life: float,
        tie_break: "str | TieBreak" = TieBreak.ID,
    ) -> DPCQuantities:
        """(ρ, δ, μ) with exponentially decayed densities over all arrivals.

        Each point's contribution to its neighbours' density is
        ``0.5 ** (age / half_life)`` where age counts arrivals since it
        (the newest point has age 0).  ρ becomes a float sum of neighbour
        weights; δ/μ run through the standard machinery on that density —
        hotspots that stopped receiving points fade instead of vanishing
        at a window edge.
        """
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        pts = self.points()
        n = len(pts)
        age = (n - 1) - np.arange(n, dtype=np.float64)
        weights = 0.5 ** (age / float(half_life))
        rho = np.empty(n, dtype=np.float64)
        for start, stop, block in pairwise_blocks(pts, self._index.metric):
            within = block < dc
            # The diagonal self-match contributes its own weight; remove it.
            rho[start:stop] = within @ weights - weights[start:stop]
        return naive_quantities(
            pts, dc, metric=self._index.metric, tie_break=tie_break, rho=rho
        )
