"""Lloyd's k-means — the paper's centroid-based comparison point.

Section 1 argues density-based methods beat centroid-based ones on
arbitrary-shaped clusters and outlier handling; the comparison example uses
this implementation (k-means++ seeding, Lloyd iterations) to show it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans"]


@dataclass
class KMeansResult:
    """Labels, centroids, inertia, and iteration count of one k-means run."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        return len(self.centroids)


def _plus_plus_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: each next centroid sampled ∝ squared distance."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total == 0.0:
            centroids[i:] = centroids[0]
            break
        probs = closest_sq / total
        centroids[i] = points[rng.choice(n, p=probs)]
        d = ((points - centroids[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, d, out=closest_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation (squared-Euclidean)."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got {points.shape}")
    if not (1 <= k <= len(points)):
        raise ValueError(f"k must be in [1, {len(points)}], got {k}")
    rng = np.random.default_rng(seed)
    centroids = _plus_plus_init(points, k, rng)

    labels = np.zeros(len(points), dtype=np.int64)
    inertia = np.inf
    for iteration in range(1, max_iter + 1):
        # Assignment step.
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_inertia = float(d2[np.arange(len(points)), labels].sum())
        # Update step; empty clusters re-seed at the farthest point.
        for c in range(k):
            members = points[labels == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                farthest = int(d2.min(axis=1).argmax())
                centroids[c] = points[farthest]
        if abs(inertia - new_inertia) <= tol * max(inertia, 1.0):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(
        labels=labels, centroids=centroids, inertia=inertia, n_iter=iteration
    )
