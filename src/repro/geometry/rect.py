"""Axis-aligned rectangles (minimum bounding rectangles).

Shared by the Quadtree, R-tree, kd-tree, and grid indexes.  A rectangle is a
closed box ``[lo, hi]`` in d dimensions.  The two quantities the paper's
pruning framework needs (Table 1: ``dmin`` / ``dmax``) are provided for any
metric with exact rectangle bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

import numpy as np

from repro.geometry.distance import Metric, get_metric

__all__ = ["Rect", "bounding_rect"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box ``[lo, hi]``.

    ``lo`` and ``hi`` are float64 arrays of equal length; ``lo <= hi``
    component-wise.  Instances are immutable and safe to share across nodes.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"lo/hi must be 1-D of equal length, got {lo.shape} vs {hi.shape}")
        if np.any(lo > hi):
            raise ValueError(f"degenerate rect: lo {lo} exceeds hi {hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- basic geometry -----------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    def area(self) -> float:
        """Hyper-volume of the box (product of extents)."""
        return float(np.prod(self.extent))

    def margin(self) -> float:
        """Sum of edge lengths (the R*-tree 'margin' of the box)."""
        return float(self.extent.sum())

    def contains_point(self, p: np.ndarray) -> bool:
        p = np.asarray(p, dtype=np.float64)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Rect") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def union(self, other: "Rect") -> "Rect":
        return Rect(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expanded_to(self, p: np.ndarray) -> "Rect":
        p = np.asarray(p, dtype=np.float64)
        return Rect(np.minimum(self.lo, p), np.maximum(self.hi, p))

    def enlargement(self, other: "Rect") -> float:
        """Area growth if ``other`` were merged in (Guttman's ChooseLeaf cost)."""
        return self.union(other).area() - self.area()

    def intersection_area(self, other: "Rect") -> float:
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return 0.0
        return float(np.prod(hi - lo))

    # -- metric bounds (paper Table 1: dmin/dmax) ----------------------------

    def mindist(self, p: np.ndarray, metric: "str | Metric" = "euclidean") -> float:
        """Minimum distance from point ``p`` to this box (0 when inside)."""
        m = get_metric(metric)
        if not m.supports_rect_bounds:
            raise ValueError(f"metric {m.name!r} has no exact rectangle bounds")
        return m.rect_mindist(np.asarray(p, dtype=np.float64), self.lo, self.hi)

    def maxdist(self, p: np.ndarray, metric: "str | Metric" = "euclidean") -> float:
        """Maximum distance from point ``p`` to any point of this box."""
        m = get_metric(metric)
        if not m.supports_rect_bounds:
            raise ValueError(f"metric {m.name!r} has no exact rectangle bounds")
        return m.rect_maxdist(np.asarray(p, dtype=np.float64), self.lo, self.hi)

    # -- subdivision ----------------------------------------------------------

    def quadrants(self) -> List["Rect"]:
        """Split a 2-D rect into its four quadrants (quadtree children).

        Order: SW, SE, NW, NE (x-minor, y-major).
        """
        if self.ndim != 2:
            raise ValueError(f"quadrants() requires a 2-D rect, got {self.ndim}-D")
        cx, cy = self.center
        (x0, y0), (x1, y1) = self.lo, self.hi
        return [
            Rect(np.array([x0, y0]), np.array([cx, cy])),
            Rect(np.array([cx, y0]), np.array([x1, cy])),
            Rect(np.array([x0, cy]), np.array([cx, y1])),
            Rect(np.array([cx, cy]), np.array([x1, y1])),
        ]

    def split_at(self, axis: int, value: float) -> Tuple["Rect", "Rect"]:
        """Split along ``axis`` at ``value`` into (low side, high side)."""
        if not (self.lo[axis] <= value <= self.hi[axis]):
            raise ValueError(
                f"split value {value} outside [{self.lo[axis]}, {self.hi[axis]}] on axis {axis}"
            )
        left_hi = self.hi.copy()
        left_hi[axis] = value
        right_lo = self.lo.copy()
        right_lo[axis] = value
        return Rect(self.lo, left_hi), Rect(right_lo, self.hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = ", ".join(f"{v:g}" for v in self.lo)
        hi = ", ".join(f"{v:g}" for v in self.hi)
        return f"Rect([{lo}] .. [{hi}])"


def bounding_rect(points: np.ndarray, pad: float = 0.0) -> Rect:
    """Tight bounding box of ``points`` (shape ``(n, d)``), optionally padded.

    ``pad`` inflates each side by an absolute amount, which the quadtree uses
    to avoid points sitting exactly on the outer boundary.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got shape {points.shape}")
    lo = points.min(axis=0) - pad
    hi = points.max(axis=0) + pad
    return Rect(lo, hi)
