"""Distance metrics and memory-bounded pairwise kernels.

Every index in this package consults the same metric objects so that the
naive baseline, the list-based indexes, and the tree-based indexes agree on
distances bit-for-bit.  A :class:`Metric` knows how to compute

* one-to-many distances (``distances_from``), the workhorse of index
  construction and of the naive baseline;
* many-to-many block distances (``cross``), used by the chunked pairwise
  helpers below;
* per-coordinate lower bounds to axis-aligned rectangles (``rect_mindist`` /
  ``rect_maxdist``), which is what the tree indexes prune with;
* batched rectangle bounds (``rect_mindist_many`` / ``rect_maxdist_many``)
  over a whole block of query points at once — the entry point for the
  vectorised tree/grid traversals in :mod:`repro.indexes.kernels` users.

Only metrics for which rectangle bounds are exact are allowed in the tree
indexes; the list-based indexes accept any metric.  The batched bounds use
the same per-axis formulas as the scalar ones, so pruning decisions are
identical between the scalar and vectorised query paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "Metric",
    "available_metrics",
    "get_metric",
    "register_metric",
    "pairwise_distances",
    "pairwise_blocks",
    "cross_blocks",
    "distances_to_point",
    "paired_distances",
    "rect_bounds_many",
]


@dataclass(frozen=True)
class Metric:
    """A distance metric with vectorised kernels and rectangle bounds.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"euclidean"``.
    distances_from:
        ``f(points, q) -> (n,) float64`` distances from each row of
        ``points`` to the single point ``q``.
    cross:
        ``f(a, b) -> (len(a), len(b)) float64`` distance matrix.
    rect_mindist:
        ``f(q, lo, hi) -> float`` minimum distance from ``q`` to the
        axis-aligned box ``[lo, hi]`` (0.0 when ``q`` is inside).
    rect_maxdist:
        ``f(q, lo, hi) -> float`` maximum distance from ``q`` to the box.
    supports_rect_bounds:
        Whether the rectangle bounds are exact; tree indexes require this.
    rect_mindist_many / rect_maxdist_many:
        ``f(points, lo, hi) -> (n,) float64`` — the same bounds evaluated
        for every row of ``points``, either against one box or against
        per-row ``(n, d)`` ``lo``/``hi`` boxes (the built-ins' per-axis
        formulas broadcast both ways; the batched δ engine relies on the
        per-row form for its flattened ``(query, node)`` pair arrays).
        ``None`` means the metric has no native batched form; callers fall
        back to the scalar functions via :func:`rect_bounds_many`.
    pair_dists:
        ``f(a, b) -> (n,) float64`` — elementwise distances between row
        pairs ``(a[i], b[i])``, bit-identical to ``cross(a, b)`` diagonal
        entries / per-row ``distances_from`` (same subtract-and-reduce
        arithmetic).  ``None`` falls back to a scalar row loop in
        :func:`paired_distances`.
    coord_radius:
        ``f(t) -> coordinate radius`` of the metric ball of radius ``t`` —
        the largest per-axis coordinate offset a point within metric
        distance ``t`` can have (a numpy ufunc, so it accepts arrays).
        ``None`` means metric values already are coordinate-comparable
        (euclidean, manhattan, chebyshev, any L_p): the radius is ``t``
        itself.  Squared euclidean needs ``sqrt``; the grid index's
        cell-window and ring-bound arithmetic — which works in coordinate
        units — routes thresholds through this.
    """

    name: str
    distances_from: Callable[[np.ndarray, np.ndarray], np.ndarray]
    cross: Callable[[np.ndarray, np.ndarray], np.ndarray]
    rect_mindist: Callable[[np.ndarray, np.ndarray, np.ndarray], float]
    rect_maxdist: Callable[[np.ndarray, np.ndarray, np.ndarray], float]
    supports_rect_bounds: bool = True
    rect_mindist_many: "Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None" = None
    rect_maxdist_many: "Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray] | None" = None
    pair_dists: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None
    coord_radius: "Callable[[np.ndarray], np.ndarray] | None" = None

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between two single points."""
        return float(self.distances_from(np.asarray(q, dtype=np.float64)[None, :], p)[0])


# ---------------------------------------------------------------------------
# Euclidean
# ---------------------------------------------------------------------------


def _euclidean_from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    diff = points - q
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _euclidean_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Deliberately the same difference-based formula as _euclidean_from (not
    # the Gram-matrix trick): every code path in the package — baseline,
    # list builders, tree leaves — must produce bit-identical distances, or
    # the cross-index exactness contract breaks at dc boundaries.
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _box_axis_gaps(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-axis distance from q to the interval [lo, hi] (0 inside)."""
    return np.maximum(np.maximum(lo - q, q - hi), 0.0)


def _box_axis_reach(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-axis distance from q to the farthest face of [lo, hi]."""
    return np.maximum(np.abs(q - lo), np.abs(q - hi))


# The scalar box bounds reduce with einsum, NOT np.dot: BLAS dot may fuse
# multiply-adds (FMA), drifting one ulp from the einsum-based distance
# kernels.  A bound that differs from an exactly-equal point distance in the
# last ulp breaks the δ query's equality-keeps-ties pruning invariant
# (observed: a duplicate-point tie pruned away, μ resolved to a larger id).


def _euclidean_rect_min(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    gaps = _box_axis_gaps(q, lo, hi)
    return float(np.sqrt(np.einsum("i,i->", gaps, gaps)))


def _euclidean_rect_max(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    reach = _box_axis_reach(q, lo, hi)
    return float(np.sqrt(np.einsum("i,i->", reach, reach)))


# Batched box bounds: `points` is (n, d), `lo`/`hi` one box.  The per-axis
# gap/reach expressions broadcast unchanged, so each row gets exactly the
# elementwise operations of the scalar function.


def _euclidean_rect_min_many(points, lo, hi) -> np.ndarray:
    gaps = _box_axis_gaps(points, lo, hi)
    return np.sqrt(np.einsum("ij,ij->i", gaps, gaps))


def _euclidean_rect_max_many(points, lo, hi) -> np.ndarray:
    reach = _box_axis_reach(points, lo, hi)
    return np.sqrt(np.einsum("ij,ij->i", reach, reach))


# ---------------------------------------------------------------------------
# Squared euclidean (useful for benchmarks; NOT a metric in the triangle
# inequality sense, but rectangle bounds remain exact)
# ---------------------------------------------------------------------------


def _sqeuclidean_from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    diff = points - q
    return np.einsum("ij,ij->i", diff, diff)


def _sqeuclidean_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Same bit-exactness requirement as _euclidean_cross: compute the sum of
    # squared differences directly, never via sqrt-then-square.
    diff = a[:, None, :] - b[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def _sqeuclidean_rect_min(q, lo, hi) -> float:
    gaps = _box_axis_gaps(q, lo, hi)
    return float(np.einsum("i,i->", gaps, gaps))  # einsum, not dot: see above


def _sqeuclidean_rect_max(q, lo, hi) -> float:
    reach = _box_axis_reach(q, lo, hi)
    return float(np.einsum("i,i->", reach, reach))


def _sqeuclidean_rect_min_many(points, lo, hi) -> np.ndarray:
    gaps = _box_axis_gaps(points, lo, hi)
    return np.einsum("ij,ij->i", gaps, gaps)


def _sqeuclidean_rect_max_many(points, lo, hi) -> np.ndarray:
    reach = _box_axis_reach(points, lo, hi)
    return np.einsum("ij,ij->i", reach, reach)


# ---------------------------------------------------------------------------
# Manhattan / Chebyshev
# ---------------------------------------------------------------------------


def _manhattan_from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.abs(points - q).sum(axis=1)


def _manhattan_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)


def _manhattan_rect_min(q, lo, hi) -> float:
    return float(_box_axis_gaps(q, lo, hi).sum())


def _manhattan_rect_max(q, lo, hi) -> float:
    return float(_box_axis_reach(q, lo, hi).sum())


def _manhattan_rect_min_many(points, lo, hi) -> np.ndarray:
    return _box_axis_gaps(points, lo, hi).sum(axis=1)


def _manhattan_rect_max_many(points, lo, hi) -> np.ndarray:
    return _box_axis_reach(points, lo, hi).sum(axis=1)


def _chebyshev_from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    return np.abs(points - q).max(axis=1)


def _chebyshev_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a[:, None, :] - b[None, :, :]).max(axis=2)


def _chebyshev_rect_min(q, lo, hi) -> float:
    return float(_box_axis_gaps(q, lo, hi).max(initial=0.0))


def _chebyshev_rect_max(q, lo, hi) -> float:
    return float(_box_axis_reach(q, lo, hi).max(initial=0.0))


def _chebyshev_rect_min_many(points, lo, hi) -> np.ndarray:
    return _box_axis_gaps(points, lo, hi).max(axis=1, initial=0.0)


def _chebyshev_rect_max_many(points, lo, hi) -> np.ndarray:
    return _box_axis_reach(points, lo, hi).max(axis=1, initial=0.0)


# ---------------------------------------------------------------------------
# Haversine (lat/lon degrees -> great-circle km); no exact rectangle bounds,
# so it is list-index-only.  Provided because the paper's two real datasets
# (Brightkite, Gowalla) are geographic check-ins.
# ---------------------------------------------------------------------------

_EARTH_RADIUS_KM = 6371.0088


def _haversine_from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    lat1, lon1 = np.radians(points[:, 0]), np.radians(points[:, 1])
    lat2, lon2 = np.radians(q[0]), np.radians(q[1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


def _haversine_cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = np.empty((len(a), len(b)), dtype=np.float64)
    for i, row in enumerate(a):
        out[i] = _haversine_from(b, row)
    return out


def _haversine_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Same operations as _haversine_from, with the fixed point replaced by a
    # per-row counterpart (bit-identical elementwise).
    lat1, lon1 = np.radians(a[:, 0]), np.radians(a[:, 1])
    lat2, lon2 = np.radians(b[:, 0]), np.radians(b[:, 1])
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


def _haversine_rect_unsupported(q, lo, hi) -> float:
    raise NotImplementedError("haversine has no exact rectangle bounds")


# ---------------------------------------------------------------------------
# Minkowski factory
# ---------------------------------------------------------------------------


def make_minkowski(p: float) -> Metric:
    """Build an L_p Minkowski metric (``p >= 1``) with exact box bounds."""
    if p < 1:
        raise ValueError(f"minkowski order must be >= 1, got {p}")

    def _from(points: np.ndarray, q: np.ndarray) -> np.ndarray:
        return (np.abs(points - q) ** p).sum(axis=1) ** (1.0 / p)

    def _cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.abs(a[:, None, :] - b[None, :, :]) ** p).sum(axis=2) ** (1.0 / p)

    def _rect_min_many(points, lo, hi) -> np.ndarray:
        gaps = _box_axis_gaps(points, lo, hi)
        return (gaps**p).sum(axis=1) ** (1.0 / p)

    def _rect_max_many(points, lo, hi) -> np.ndarray:
        reach = _box_axis_reach(points, lo, hi)
        return (reach**p).sum(axis=1) ** (1.0 / p)

    # Scalar bounds route through the array kernels: numpy's *scalar*
    # ``** (1/p)`` and the array power ufunc can disagree in the last ulp,
    # and a bound one ulp above an exactly-tied distance breaks the δ
    # query's equality-keeps-ties pruning (same failure mode as the
    # np.dot-vs-einsum euclidean case above).

    def _rect_min(q, lo, hi) -> float:
        return float(_rect_min_many(np.asarray(q)[None, :], lo, hi)[0])

    def _rect_max(q, lo, hi) -> float:
        return float(_rect_max_many(np.asarray(q)[None, :], lo, hi)[0])

    return Metric(
        name=f"minkowski[p={p:g}]",
        distances_from=_from,
        cross=_cross,
        rect_mindist=_rect_min,
        rect_maxdist=_rect_max,
        rect_mindist_many=_rect_min_many,
        rect_maxdist_many=_rect_max_many,
        pair_dists=_from,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Metric] = {}


def register_metric(metric: Metric) -> Metric:
    """Add ``metric`` to the registry (overwrites an existing entry)."""
    _REGISTRY[metric.name] = metric
    return metric


register_metric(
    Metric(
        "euclidean",
        _euclidean_from,
        _euclidean_cross,
        _euclidean_rect_min,
        _euclidean_rect_max,
        rect_mindist_many=_euclidean_rect_min_many,
        rect_maxdist_many=_euclidean_rect_max_many,
        pair_dists=_euclidean_from,  # elementwise formula broadcasts row pairs
    )
)
register_metric(
    Metric(
        "sqeuclidean",
        _sqeuclidean_from,
        _sqeuclidean_cross,
        _sqeuclidean_rect_min,
        _sqeuclidean_rect_max,
        rect_mindist_many=_sqeuclidean_rect_min_many,
        rect_maxdist_many=_sqeuclidean_rect_max_many,
        pair_dists=_sqeuclidean_from,
        coord_radius=np.sqrt,  # squared threshold -> coordinate radius
    )
)
register_metric(
    Metric(
        "manhattan",
        _manhattan_from,
        _manhattan_cross,
        _manhattan_rect_min,
        _manhattan_rect_max,
        rect_mindist_many=_manhattan_rect_min_many,
        rect_maxdist_many=_manhattan_rect_max_many,
        pair_dists=_manhattan_from,
    )
)
register_metric(
    Metric(
        "chebyshev",
        _chebyshev_from,
        _chebyshev_cross,
        _chebyshev_rect_min,
        _chebyshev_rect_max,
        rect_mindist_many=_chebyshev_rect_min_many,
        rect_maxdist_many=_chebyshev_rect_max_many,
        pair_dists=_chebyshev_from,
    )
)
register_metric(
    Metric(
        "haversine",
        _haversine_from,
        _haversine_cross,
        _haversine_rect_unsupported,
        _haversine_rect_unsupported,
        supports_rect_bounds=False,
        pair_dists=_haversine_pair,
    )
)


def available_metrics() -> Tuple[str, ...]:
    """Names of all registered metrics, sorted."""
    return tuple(sorted(_REGISTRY))


def get_metric(metric: "str | Metric") -> Metric:
    """Resolve a metric name (or pass a :class:`Metric` through).

    ``"minkowski[p=3]"`` style names are materialised on demand.
    """
    if isinstance(metric, Metric):
        return metric
    if metric in _REGISTRY:
        return _REGISTRY[metric]
    if metric.startswith("minkowski[p=") and metric.endswith("]"):
        order = float(metric[len("minkowski[p=") : -1])
        return make_minkowski(order)
    raise KeyError(f"unknown metric {metric!r}; available: {available_metrics()}")


# ---------------------------------------------------------------------------
# Chunked pairwise helpers
# ---------------------------------------------------------------------------


def rect_bounds_many(metric: "str | Metric"):
    """Batched ``(mindist, maxdist)`` box-bound callables for ``metric``.

    Each returned function maps ``(points, lo, hi) -> (n,) float64``.  Metrics
    registered without native batched bounds fall back to a row loop over the
    scalar functions, so any exact-rect-bounds metric works in the vectorised
    tree/grid traversals.
    """
    m = get_metric(metric)
    if not m.supports_rect_bounds:
        raise ValueError(f"metric {m.name!r} has no exact rectangle bounds")
    min_many = m.rect_mindist_many
    max_many = m.rect_maxdist_many
    if min_many is None:
        scalar_min = m.rect_mindist

        def min_many(points, lo, hi):  # pragma: no cover - exercised via custom metrics
            return np.array([scalar_min(q, lo, hi) for q in points], dtype=np.float64)

    if max_many is None:
        scalar_max = m.rect_maxdist

        def max_many(points, lo, hi):  # pragma: no cover - exercised via custom metrics
            return np.array([scalar_max(q, lo, hi) for q in points], dtype=np.float64)

    return min_many, max_many


def distances_to_point(
    points: np.ndarray, q: np.ndarray, metric: "str | Metric" = "euclidean"
) -> np.ndarray:
    """Distances from every row of ``points`` to the single point ``q``."""
    m = get_metric(metric)
    points = np.ascontiguousarray(points, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return m.distances_from(points, q)


def pairwise_blocks(
    points: np.ndarray,
    metric: "str | Metric" = "euclidean",
    block_rows: int = 1024,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, block)`` where ``block`` is rows ``start:stop``
    of the full pairwise distance matrix.

    Keeps peak memory at ``O(block_rows * n)`` instead of ``O(n^2)``, which is
    how the naive baseline and the list-index builder scale past ~20k points.
    """
    if block_rows <= 0:
        raise ValueError(f"block_rows must be positive, got {block_rows}")
    m = get_metric(metric)
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = len(points)
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        yield start, stop, m.cross(points[start:stop], points)


def paired_distances(
    a: np.ndarray, b: np.ndarray, metric: "str | Metric" = "euclidean"
) -> np.ndarray:
    """Elementwise distances between row pairs ``(a[i], b[i])``.

    The gather-friendly form of ``metric.cross`` used by the batched δ
    engine: each engine pair carries its *own* candidate row, so a dense
    cross matrix would waste ``O(n·m)`` work where only the ``n`` paired
    entries are needed.  Uses the metric's native ``pair_dists`` kernel
    (bit-identical arithmetic to ``cross``/``distances_from``); metrics
    registered without one fall back to a scalar row loop.
    """
    m = get_metric(metric)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"paired rows differ in shape: {a.shape} vs {b.shape}")
    if m.pair_dists is not None:
        return m.pair_dists(a, b)
    return np.array(  # pragma: no cover - exercised via custom metrics
        [m(a[i], b[i]) for i in range(len(a))], dtype=np.float64
    )


def cross_blocks(
    a: np.ndarray,
    b: np.ndarray,
    metric: "str | Metric" = "euclidean",
    block_elems: int = 4_000_000,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, block)`` slabs of ``metric.cross(a, b)``.

    The rectangular analogue of :func:`pairwise_blocks`: ``block`` holds the
    distances from rows ``start:stop`` of ``a`` to every row of ``b``, with
    row-block size chosen so no slab exceeds ``block_elems`` elements.  The
    batched δ kernels use it to sweep a handful of query rows (global peaks,
    unselected-peak fallbacks) against the full point set without ever
    materialising an ``O(len(a) · len(b))`` matrix.
    """
    if block_elems <= 0:
        raise ValueError(f"block_elems must be positive, got {block_elems}")
    m = get_metric(metric)
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    rows = max(1, block_elems // max(len(b), 1))
    for start in range(0, len(a), rows):
        stop = min(start + rows, len(a))
        yield start, stop, m.cross(a[start:stop], b)


def pairwise_distances(
    points: np.ndarray, metric: "str | Metric" = "euclidean"
) -> np.ndarray:
    """Full ``(n, n)`` distance matrix.  Only for small inputs / tests."""
    m = get_metric(metric)
    points = np.ascontiguousarray(points, dtype=np.float64)
    return m.cross(points, points)
