"""Geometric substrate shared by every index: metrics and rectangles."""

from repro.geometry.distance import (
    Metric,
    available_metrics,
    get_metric,
    pairwise_distances,
    pairwise_blocks,
    distances_to_point,
)
from repro.geometry.rect import Rect, bounding_rect

__all__ = [
    "Metric",
    "available_metrics",
    "get_metric",
    "pairwise_distances",
    "pairwise_blocks",
    "distances_to_point",
    "Rect",
    "bounding_rect",
]
