"""Cluster halo (border/noise) detection from the original DPC paper.

Rodriguez & Laio define, for each cluster, a *border region*: objects of the
cluster that lie within ``dc`` of an object belonging to a different cluster.
The highest density found in a cluster's border region becomes that cluster's
threshold ``ρ_b``; cluster members with ``ρ < ρ_b`` form the *halo* and are
treated as noise (the black points in the paper's Figure 2 reproduction).

The index paper inherits this step unchanged, so a blockwise Θ(n²) pass is
acceptable here — it runs once, after the expensive quantities are already
accelerated by the indexes.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantities import DPCResult
from repro.geometry.distance import Metric, pairwise_blocks

__all__ = ["halo_mask"]


def halo_mask(
    points: np.ndarray,
    labels: np.ndarray,
    rho: np.ndarray,
    dc: float,
    metric: "str | Metric" = "euclidean",
    block_rows: int = 1024,
) -> np.ndarray:
    """Boolean mask of halo (border-noise) objects.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    labels:
        Cluster labels from :func:`repro.core.assign_labels`.
    rho:
        Local densities for the same ``dc``.
    dc:
        The cut-off distance that defines the border region.

    Returns
    -------
    ``(n,)`` bool array; ``True`` marks halo objects.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    # float64 preserves both the paper's integer counts (exactly, n < 2^53)
    # and the real-valued densities of the Gaussian-kernel/kNN variants —
    # an int cast here would truncate the latter and corrupt the border
    # thresholds.
    rho = np.asarray(rho, dtype=np.float64)
    n = len(points)
    if len(labels) != n or len(rho) != n:
        raise ValueError("points, labels and rho must have equal length")
    n_clusters = int(labels.max()) + 1 if n else 0

    # Border density per cluster: Rodriguez & Laio use the *average* density
    # of each cross-cluster pair within dc; the commonly used variant (and
    # the one in the authors' published script) takes (rho_p + rho_q) / 2.
    rho_border = np.zeros(n_clusters, dtype=np.float64)
    for start, stop, block in pairwise_blocks(points, metric, block_rows):
        rows = np.arange(start, stop)
        within = block < dc
        # Exclude self-pairs on the diagonal slice of this block.
        within[np.arange(len(rows)), rows] = False
        cross = labels[rows, None] != labels[None, :]
        pairs = within & cross
        if not pairs.any():
            continue
        pr, qc = np.nonzero(pairs)
        pair_density = (rho[rows[pr]] + rho[qc]) / 2.0
        for cluster in np.unique(labels[rows[pr]]):
            sel = labels[rows[pr]] == cluster
            best = pair_density[sel].max()
            if best > rho_border[cluster]:
                rho_border[cluster] = best

    return rho < rho_border[labels]


def apply_halo(result: DPCResult, points: np.ndarray, metric: "str | Metric" = "euclidean") -> DPCResult:
    """Return ``result`` with its ``halo`` field filled in."""
    result.halo = halo_mask(
        points, result.labels, result.rho, result.dc, metric=metric
    )
    return result
