"""High-level estimator: build an index once, cluster for many ``dc``.

This is the workflow the paper optimises for — "the whole clustering process
which probably involves trying many dc can be substantially shortened".
:class:`DensityPeakClustering` wires together an index (by registry name or
instance), centre selection, assignment and optional halo detection behind a
familiar fit/predict-style API::

    model = DensityPeakClustering(index="ch", dc=0.25, n_centers=15)
    model.fit(points)
    labels = model.labels_

    model.refit(dc=0.5)        # re-uses the index: the paper's headline win
    labels2 = model.labels_

    results = model.refit_many([0.1, 0.25, 0.5, 1.0])   # batched dc sweep
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.baseline import estimate_dc
from repro.core.decision import DecisionGraph
from repro.core.quantities import DPCResult, TieBreak
from repro.indexes.base import DPCIndex
from repro.indexes.registry import make_index

__all__ = ["DensityPeakClustering"]


class DensityPeakClustering:
    """DPC estimator over a pluggable index backend.

    Parameters
    ----------
    index:
        Registry name (``"list"``, ``"ch"``, ``"rn-list"``, ``"rn-ch"``,
        ``"quadtree"``, ``"rtree"``, ``"kdtree"``, ``"grid"``) or an already
        constructed :class:`~repro.indexes.base.DPCIndex` instance.
    dc:
        Cut-off distance.  ``None`` estimates it at fit time via the
        Rodriguez–Laio rule of thumb (:func:`repro.core.estimate_dc` with
        ``neighbor_fraction``).
    n_centers / rho_min+delta_min:
        Centre selection: top-k by γ, or decision-graph thresholds; when
        neither is given, the automatic largest-γ-gap heuristic applies.
    halo:
        Also compute the border halo (noise flags).
    tie_break:
        Density-tie convention (see :class:`repro.core.TieBreak`).
    index_params:
        Extra keyword arguments for the index constructor when ``index`` is
        a name (e.g. ``{"bin_width": 0.2}`` for ``"ch"``).

    Attributes (after ``fit``)
    --------------------------
    ``labels_``, ``centers_``, ``rho_`` , ``delta_``, ``mu_``, ``halo_``,
    ``result_`` (the full :class:`~repro.core.quantities.DPCResult`),
    ``decision_graph_``, ``dc_`` (the dc actually used), ``index_``.
    """

    def __init__(
        self,
        index: "str | DPCIndex" = "ch",
        dc: Optional[float] = None,
        metric: str = "euclidean",
        n_centers: Optional[int] = None,
        rho_min: Optional[float] = None,
        delta_min: Optional[float] = None,
        halo: bool = False,
        tie_break: "str | TieBreak" = TieBreak.ID,
        neighbor_fraction: float = 0.02,
        index_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
    ):
        self.index = index
        self.dc = dc
        self.metric = metric
        self.n_centers = n_centers
        self.rho_min = rho_min
        self.delta_min = delta_min
        self.halo = halo
        self.tie_break = TieBreak.coerce(tie_break)
        self.neighbor_fraction = neighbor_fraction
        self.index_params = dict(index_params or {})
        self.seed = seed

        self.index_: Optional[DPCIndex] = None
        self.result_: Optional[DPCResult] = None
        self.dc_: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------------

    def _make_index(self) -> DPCIndex:
        if isinstance(self.index, DPCIndex):
            if self.index_params:
                raise ValueError(
                    "index_params only apply when index is given by name; "
                    "configure the instance directly instead"
                )
            return self.index
        return make_index(self.index, metric=self.metric, **self.index_params)

    def fit(self, points: np.ndarray) -> "DensityPeakClustering":
        """Build (or adopt) the index over ``points`` and cluster once."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        index = self._make_index()
        if not index.is_fitted:
            index.fit(points)
        elif index.points is not points and not np.array_equal(index.points, points):
            raise ValueError("the provided index was fitted on different points")
        self.index_ = index
        dc = self.dc
        if dc is None:
            dc = estimate_dc(
                points,
                neighbor_fraction=self.neighbor_fraction,
                metric=self.metric,
                seed=self.seed,
            )
        return self.refit(dc)

    def refit(self, dc: float) -> "DensityPeakClustering":
        """Re-cluster with a new ``dc``, reusing the already-built index."""
        if self.index_ is None:
            raise RuntimeError("call fit(points) before refit(dc)")
        self.result_ = self.index_.cluster(
            dc,
            n_centers=self.n_centers,
            rho_min=self.rho_min,
            delta_min=self.delta_min,
            tie_break=self.tie_break,
            halo=self.halo,
        )
        self.dc_ = float(dc)
        return self

    def refit_many(self, dcs) -> List[DPCResult]:
        """Re-cluster for a whole grid of ``dc`` values in one batched pass.

        Returns one :class:`~repro.core.quantities.DPCResult` per ``dc`` in
        input order; the estimator's fitted attributes (``labels_``, ...)
        are left pointing at the **last** grid value, matching a sequence of
        :meth:`refit` calls.  The index evaluates the grid through
        ``cluster_multi`` / ``quantities_multi``, so the list-family indexes
        answer every cut-off with batched kernels instead of re-running the
        per-``dc`` query loop.
        """
        if self.index_ is None:
            raise RuntimeError("call fit(points) before refit_many(dcs)")
        results = self.index_.cluster_multi(
            dcs,
            n_centers=self.n_centers,
            rho_min=self.rho_min,
            delta_min=self.delta_min,
            tie_break=self.tie_break,
            halo=self.halo,
        )
        self.result_ = results[-1]
        self.dc_ = float(results[-1].dc)
        return results

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).labels_

    # -- fitted accessors ------------------------------------------------------------

    def _require_result(self) -> DPCResult:
        if self.result_ is None:
            raise RuntimeError("estimator is not fitted; call fit(points) first")
        return self.result_

    @property
    def labels_(self) -> np.ndarray:
        return self._require_result().labels

    @property
    def centers_(self) -> np.ndarray:
        return self._require_result().centers

    @property
    def rho_(self) -> np.ndarray:
        return self._require_result().rho

    @property
    def delta_(self) -> np.ndarray:
        return self._require_result().delta

    @property
    def mu_(self) -> np.ndarray:
        return self._require_result().mu

    @property
    def halo_(self) -> Optional[np.ndarray]:
        return self._require_result().halo

    @property
    def n_clusters_(self) -> int:
        return self._require_result().n_clusters

    @property
    def index_fingerprint_(self) -> str:
        """Content fingerprint of the fitted index (see
        :meth:`repro.indexes.DPCIndex.fingerprint`) — the key under which
        the serving layer caches this estimator's results."""
        if self.index_ is None:
            raise RuntimeError("estimator is not fitted; call fit(points) first")
        return self.index_.fingerprint()

    @property
    def decision_graph_(self) -> DecisionGraph:
        return DecisionGraph.from_quantities(self._require_result().quantities)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        index = self.index if isinstance(self.index, str) else type(self.index).__name__
        fitted = "fitted" if self.result_ is not None else "unfitted"
        return f"DensityPeakClustering(index={index!r}, dc={self.dc}, {fitted})"
