"""Object-to-cluster assignment (paper Section 2, step 4).

After centres are chosen, every remaining object joins the cluster of its
nearest higher-density neighbour μ.  Processing objects densest-first
guarantees μ's label is already known when an object is visited, so the whole
step is a single O(n) pass — the paper notes this step is cheap and reused
verbatim from the original algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DPCQuantities
from repro.geometry.distance import Metric, distances_to_point

__all__ = ["assign_labels"]


def assign_labels(
    quantities: DPCQuantities,
    centers: np.ndarray,
    points: Optional[np.ndarray] = None,
    metric: "str | Metric" = "euclidean",
) -> np.ndarray:
    """Propagate centre labels down the μ-chains.

    Parameters
    ----------
    quantities:
        The (ρ, δ, μ) triple; ``μ`` drives the propagation.
    centers:
        Centre object ids.  Cluster ``c`` is the cluster whose centre is
        ``centers[c]`` (densest-first ordering is conventional but not
        required).
    points, metric:
        Only needed for the corner case of an *unselected peak*: an object
        with ``μ = NO_NEIGHBOR`` that is not a centre (possible under
        ``TieBreak.STRICT``, or with an approximate index whose τ hid every
        denser neighbour).  Such objects join the nearest centre by distance;
        without ``points`` this raises instead of guessing.

    Returns
    -------
    ``(n,)`` int64 labels in ``0..len(centers)-1``.
    """
    centers = np.asarray(centers, dtype=np.int64)
    if centers.ndim != 1 or len(centers) == 0:
        raise ValueError(f"centers must be a non-empty 1-D id array, got shape {centers.shape}")
    n = len(quantities)
    if np.any((centers < 0) | (centers >= n)):
        raise ValueError("center ids out of range")
    if len(np.unique(centers)) != len(centers):
        raise ValueError("duplicate center ids")

    labels = np.full(n, -1, dtype=np.int64)
    labels[centers] = np.arange(len(centers))

    mu = quantities.mu
    for p in quantities.density_order.order:
        if labels[p] != -1:
            continue
        parent = mu[p]
        if parent == NO_NEIGHBOR:
            if points is None:
                raise ValueError(
                    f"object {p} is a peak (mu = NO_NEIGHBOR) but not a selected "
                    "center; pass points= so it can join the nearest center"
                )
            d = distances_to_point(points[centers], points[p], metric)
            labels[p] = int(np.argmin(d))
        else:
            if labels[parent] == -1:
                # Can only happen if mu points to an equal-or-lower-density
                # object, i.e. the quantities are inconsistent with the order.
                raise ValueError(
                    f"mu chain broken at object {p}: neighbor {parent} not yet labeled"
                )
            labels[p] = labels[parent]
    return labels
