"""Object-to-cluster assignment (paper Section 2, step 4).

After centres are chosen, every remaining object joins the cluster of its
nearest higher-density neighbour μ.  The classic formulation processes
objects densest-first so μ's label is already known when an object is
visited; here the same O(n) pass is evaluated as **depth-grouped parent
propagation**: round ``k`` labels every object whose μ-chain reaches a
labelled root in ``k`` hops, so the Python-level loop runs once per μ-forest
depth level (a handful of vectorised rounds) instead of once per object.
Labels and error behaviour are identical to the sequential pass — a μ edge
pointing at an equal-or-lower-density object is reported for exactly the
object the densest-first loop would have tripped on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DPCQuantities
from repro.geometry.distance import Metric, get_metric

__all__ = ["assign_labels"]


def assign_labels(
    quantities: DPCQuantities,
    centers: np.ndarray,
    points: Optional[np.ndarray] = None,
    metric: "str | Metric" = "euclidean",
) -> np.ndarray:
    """Propagate centre labels down the μ-chains.

    Parameters
    ----------
    quantities:
        The (ρ, δ, μ) triple; ``μ`` drives the propagation.
    centers:
        Centre object ids.  Cluster ``c`` is the cluster whose centre is
        ``centers[c]`` (densest-first ordering is conventional but not
        required).
    points, metric:
        Only needed for the corner case of an *unselected peak*: an object
        with ``μ = NO_NEIGHBOR`` that is not a centre (possible under
        ``TieBreak.STRICT``, or with an approximate index whose τ hid every
        denser neighbour).  Such objects join the nearest centre by distance
        (one batched cross over all of them); without ``points`` this raises
        instead of guessing.

    Returns
    -------
    ``(n,)`` int64 labels in ``0..len(centers)-1``.
    """
    centers = np.asarray(centers, dtype=np.int64)
    if centers.ndim != 1 or len(centers) == 0:
        raise ValueError(f"centers must be a non-empty 1-D id array, got shape {centers.shape}")
    n = len(quantities)
    if np.any((centers < 0) | (centers >= n)):
        raise ValueError("center ids out of range")
    if len(np.unique(centers)) != len(centers):
        raise ValueError("duplicate center ids")

    labels = np.full(n, -1, dtype=np.int64)
    labels[centers] = np.arange(len(centers))

    mu = np.asarray(quantities.mu, dtype=np.int64)
    rank = quantities.density_order.rank
    pending = np.flatnonzero(labels == -1)
    has_parent = mu[pending] != NO_NEIGHBOR
    orphans = pending[~has_parent]  # unselected peaks
    chained = pending[has_parent]

    # Identical error behaviour to the densest-first sequential pass: it
    # trips on the *first* offending object in density order — either an
    # unselected peak with no points to fall back on, or an object whose μ
    # points at an equal-or-lower-density object (labels[mu] is then still
    # unset when the object is visited — unless that object is a centre,
    # labelled from the start).  Valid chains always step to a strictly
    # smaller rank, so induction over the order labels every earlier
    # object first.
    is_center = np.zeros(n, dtype=bool)
    is_center[centers] = True
    parents = mu[chained]
    bad = chained[(rank[parents] >= rank[chained]) & ~is_center[parents]]
    first_bad = int(bad[np.argmin(rank[bad])]) if len(bad) else None
    if points is None and len(orphans):
        first_orphan = int(orphans[np.argmin(rank[orphans])])
        if first_bad is None or rank[first_orphan] < rank[first_bad]:
            raise ValueError(
                f"object {first_orphan} is a peak (mu = NO_NEIGHBOR) but not a selected "
                "center; pass points= so it can join the nearest center"
            )
    if first_bad is not None:
        raise ValueError(
            f"mu chain broken at object {first_bad}: neighbor {int(mu[first_bad])} "
            "not yet labeled"
        )

    if len(orphans):
        # One batched cross instead of a distances_from call per peak; ties
        # resolve to the first (lowest-index) centre, like the scalar argmin.
        m = get_metric(metric)
        pts = np.ascontiguousarray(points, dtype=np.float64)
        d = m.cross(pts[orphans], pts[centers])
        labels[orphans] = d.argmin(axis=1)

    # Depth-grouped propagation: each round labels the objects whose parent
    # was labelled in an earlier round (round k = μ-forest depth k).
    while len(chained):
        parent_label = labels[mu[chained]]
        ready = parent_label != -1
        labels[chained[ready]] = parent_label[ready]
        chained = chained[~ready]
    return labels
