"""The original Θ(n²) DPC algorithm (the paper's comparison baseline).

This is the algorithm of Rodriguez & Laio [1] as restated in Section 2 of the
paper: compute all pairwise distances, count neighbours within ``dc`` for ρ,
then scan all denser objects for δ.  Implemented with blockwise numpy so the
quadratic *time* cost does not come with a quadratic *memory* cost.

Every index in :mod:`repro.indexes` is validated against this module.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantities import NO_NEIGHBOR, DensityOrder, DPCQuantities, TieBreak
from repro.geometry.distance import Metric, get_metric, pairwise_blocks

__all__ = ["naive_rho", "naive_quantities", "estimate_dc"]


def _validate_points(points: np.ndarray) -> np.ndarray:
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got shape {points.shape}")
    return points


def naive_rho(
    points: np.ndarray,
    dc: float,
    metric: "str | Metric" = "euclidean",
    block_rows: int = 1024,
) -> np.ndarray:
    """Local densities by brute force: ``ρ(p) = |{q ≠ p : dist(p,q) < dc}|``."""
    points = _validate_points(points)
    if dc <= 0:
        raise ValueError(f"dc must be positive, got {dc}")
    n = len(points)
    rho = np.empty(n, dtype=np.int64)
    for start, stop, block in pairwise_blocks(points, metric, block_rows):
        within = block < dc
        counts = within.sum(axis=1)
        # The diagonal entries are the self-distances (0 < dc): subtract them.
        counts -= 1
        rho[start:stop] = counts
    return rho


def naive_quantities(
    points: np.ndarray,
    dc: float,
    metric: "str | Metric" = "euclidean",
    tie_break: "str | TieBreak" = TieBreak.ID,
    block_rows: int = 1024,
    rho: Optional[np.ndarray] = None,
) -> DPCQuantities:
    """Compute (ρ, δ, μ) by brute force.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    dc:
        Cut-off distance (paper Eq. 1, strict ``<``).
    metric:
        Any registered metric; see :func:`repro.geometry.get_metric`.
    tie_break:
        Density-tie convention; see :class:`repro.core.TieBreak`.
    block_rows:
        Row-block size for the pairwise sweeps (peak memory is
        ``O(block_rows · n)``).
    rho:
        Precomputed densities to reuse (skips the first sweep).
    """
    points = _validate_points(points)
    if rho is None:
        rho = naive_rho(points, dc, metric, block_rows)
    order = DensityOrder(rho, tie_break)
    n = len(points)

    delta = np.empty(n, dtype=np.float64)
    mu = np.full(n, NO_NEIGHBOR, dtype=np.int64)
    peaks = order.global_peaks()
    peak_set = set(int(p) for p in peaks)

    for start, stop, block in pairwise_blocks(points, metric, block_rows):
        rows = np.arange(start, stop)
        if order.tie_break is TieBreak.ID:
            denser = order.rank[None, :] < order.rank[rows, None]
        else:
            denser = rho[None, :] > rho[rows, None]
        masked = np.where(denser, block, np.inf)
        arg = masked.argmin(axis=1)
        best = masked[np.arange(len(rows)), arg]
        for i, p in enumerate(rows):
            if p in peak_set:
                # Convention for the densest object: δ = max_q dist(p, q).
                delta[p] = block[i].max()
                mu[p] = NO_NEIGHBOR
            else:
                delta[p] = best[i]
                mu[p] = arg[i]
    return DPCQuantities(dc=dc, rho=rho, delta=delta, mu=mu, density_order=order)


def estimate_dc(
    points: np.ndarray,
    neighbor_fraction: float = 0.02,
    metric: "str | Metric" = "euclidean",
    sample_size: int = 2048,
    seed: int = 0,
) -> float:
    """Heuristic ``dc`` so that the average ρ is ≈ ``neighbor_fraction · n``.

    Rodriguez & Laio's rule of thumb is to choose ``dc`` so each object has,
    on average, 1–2% of the dataset as neighbours.  We estimate the
    ``neighbor_fraction`` quantile of the pairwise distance distribution from
    a random sample (exact for small inputs).
    """
    points = _validate_points(points)
    if not (0.0 < neighbor_fraction < 1.0):
        raise ValueError(f"neighbor_fraction must be in (0, 1), got {neighbor_fraction}")
    rng = np.random.default_rng(seed)
    n = len(points)
    if n > sample_size:
        idx = rng.choice(n, size=sample_size, replace=False)
        sample = points[idx]
    else:
        sample = points
    m = get_metric(metric)
    d = m.cross(sample, sample)
    iu = np.triu_indices(len(sample), k=1)
    flat = d[iu]
    if len(flat) == 0:
        raise ValueError("need at least 2 points to estimate dc")
    dc = float(np.quantile(flat, neighbor_fraction))
    if dc <= 0.0:
        # All sampled pairs coincide at the quantile; fall back to the
        # smallest strictly positive distance so that dc stays usable.
        positive = flat[flat > 0.0]
        if len(positive) == 0:
            raise ValueError("all points coincide; dc cannot be estimated")
        dc = float(positive.min())
    return dc
