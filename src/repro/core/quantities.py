"""DPC quantities (ρ, δ, μ) and the density total order.

The paper defines (Section 2):

* ``ρ(p)`` — number of objects ``q ≠ p`` with ``dist(p, q) < dc`` (Eq. 1);
* ``δ(p)`` — minimum distance to any *higher-density* object (Eq. 2), with
  ``δ = max_q dist(p, q)`` for the globally densest object;
* ``μ(p)`` — the higher-density object realising ``δ(p)``.

Density ties
------------
With integer densities, ties are common (uniform regions, tiny ``dc``).  Under
the strict reading of Eq. 2 every object tied at a locally maximal density has
*no* higher-density neighbour, which sprays spurious peaks across flat
regions.  The paper's own worked example breaks ties by object id ("suppose a
smaller object ID represents a higher local density", Example 1), matching the
original Rodriguez–Laio implementation which processes objects in a fixed
density-descending order.  We support both conventions:

* :data:`TieBreak.ID` (default) — ``q`` is denser than ``p`` iff
  ``ρ(q) > ρ(p)`` or (``ρ(q) = ρ(p)`` and ``q < p``).  This is a total order;
  exactly one object (the *global peak*) has no denser object.
* :data:`TieBreak.STRICT` — Eq. 2 verbatim; every object at the global
  maximum density gets ``δ = max_q dist(p, q)`` and ``μ = NO_NEIGHBOR``.

All indexes in :mod:`repro.indexes` honour the same convention, so exact
indexes reproduce the naive baseline bit-for-bit (the cross-index contract in
DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["TieBreak", "DensityOrder", "DPCQuantities", "DPCResult", "NO_NEIGHBOR"]

#: Sentinel stored in ``μ`` for objects with no higher-density neighbour.
NO_NEIGHBOR: int = -1


class TieBreak(str, enum.Enum):
    """How equal densities are ordered (see module docstring)."""

    ID = "id"
    STRICT = "strict"

    @classmethod
    def coerce(cls, value: "str | TieBreak") -> "TieBreak":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"tie_break must be one of {[m.value for m in cls]}, got {value!r}"
            ) from None


class DensityOrder:
    """A resolved density ordering over ``n`` objects.

    Wraps a ρ array together with the tie-break convention and precomputes the
    density-descending permutation used by δ queries and cluster assignment.

    Attributes
    ----------
    rho:
        ``(n,)`` local densities.  Integer counts (paper Eq. 1) stay int64;
        real-valued densities (the Gaussian-kernel and kNN variants in
        :mod:`repro.extras.variants`) stay float64 — the ordering logic is
        dtype-agnostic.
    order:
        ``(n,)`` object ids sorted densest-first (ties by ascending id).
    rank:
        ``(n,)`` inverse permutation: ``rank[p]`` is ``p``'s position in
        ``order``; under :data:`TieBreak.ID`, ``q`` is denser than ``p`` iff
        ``rank[q] < rank[p]``.
    """

    __slots__ = ("rho", "tie_break", "order", "rank")

    def __init__(self, rho: np.ndarray, tie_break: "str | TieBreak" = TieBreak.ID):
        rho = np.asarray(rho)
        if rho.ndim != 1:
            raise ValueError(f"rho must be 1-D, got shape {rho.shape}")
        if np.issubdtype(rho.dtype, np.integer) or rho.dtype == np.bool_:
            self.rho = rho.astype(np.int64, copy=False)
        elif np.issubdtype(rho.dtype, np.floating):
            if np.isnan(rho).any():
                raise ValueError("rho contains NaN")
            self.rho = rho.astype(np.float64, copy=False)
        else:
            raise ValueError(f"rho must be numeric, got dtype {rho.dtype}")
        self.tie_break = TieBreak.coerce(tie_break)
        ids = np.arange(len(rho))
        # lexsort: last key is primary -> sort by -rho, tie-break ascending id.
        self.order = np.lexsort((ids, -self.rho))
        self.rank = np.empty(len(rho), dtype=np.int64)
        self.rank[self.order] = ids

    def __len__(self) -> int:
        return len(self.rho)

    def is_denser(self, q: int, p: int) -> bool:
        """Is object ``q`` denser than object ``p`` under the convention?"""
        if self.tie_break is TieBreak.ID:
            return bool(self.rank[q] < self.rank[p])
        return bool(self.rho[q] > self.rho[p])

    def denser_mask(self, p: int, candidates: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_denser` over an id array ``candidates``."""
        if self.tie_break is TieBreak.ID:
            return self.rank[candidates] < self.rank[p]
        return self.rho[candidates] > self.rho[p]

    def node_may_contain_denser(self, p: int, node_maxrho: float) -> bool:
        """Density-pruning test (Lemma 1) that stays safe under ties.

        A node whose maximum density is *strictly below* ``ρ(p)`` can never
        contain a denser object.  Equality must be kept: under
        :data:`TieBreak.ID` a tied object with a smaller id is denser.
        """
        return node_maxrho >= self.rho[p]

    def global_peaks(self) -> np.ndarray:
        """Ids of objects with no denser object.

        Exactly one id under :data:`TieBreak.ID`; all objects at the maximum
        density under :data:`TieBreak.STRICT`.
        """
        if self.tie_break is TieBreak.ID:
            return self.order[:1].copy()
        return np.flatnonzero(self.rho == self.rho.max())


@dataclass
class DPCQuantities:
    """The (ρ, δ, μ) triple for one ``dc``, plus the order used to derive δ.

    ``mu[p] == NO_NEIGHBOR`` marks objects with no denser neighbour (the
    global peak, or — in the approximate indexes — objects whose denser
    neighbour lies beyond the truncation radius τ).
    """

    dc: float
    rho: np.ndarray
    delta: np.ndarray
    mu: np.ndarray
    density_order: DensityOrder = field(repr=False)

    def __post_init__(self) -> None:
        n = len(self.rho)
        if not (len(self.delta) == len(self.mu) == n):
            raise ValueError(
                f"inconsistent lengths: rho={n}, delta={len(self.delta)}, mu={len(self.mu)}"
            )
        if self.dc <= 0:
            raise ValueError(f"dc must be positive, got {self.dc}")

    def __len__(self) -> int:
        return len(self.rho)

    @property
    def gamma(self) -> np.ndarray:
        """The ``γ = ρ · δ`` centre score (finite δ only; peaks keep their δ)."""
        return self.rho.astype(np.float64) * self.delta


@dataclass
class DPCResult:
    """A complete clustering: quantities + centres + labels (+ halo).

    ``labels[p]`` is the cluster id of object ``p`` (``0..k-1``); objects in
    the halo keep their label, with ``halo[p] = True`` flagging them as
    border/noise per the original DPC paper.
    """

    quantities: DPCQuantities
    centers: np.ndarray
    labels: np.ndarray
    halo: Optional[np.ndarray] = None

    @property
    def n_clusters(self) -> int:
        return len(self.centers)

    @property
    def dc(self) -> float:
        return self.quantities.dc

    @property
    def rho(self) -> np.ndarray:
        return self.quantities.rho

    @property
    def delta(self) -> np.ndarray:
        return self.quantities.delta

    @property
    def mu(self) -> np.ndarray:
        return self.quantities.mu

    def cluster_sizes(self) -> np.ndarray:
        """Number of objects per cluster (halo included)."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def core_mask(self) -> np.ndarray:
        """Objects not in the halo (all objects when halo was not computed)."""
        if self.halo is None:
            return np.ones(len(self.labels), dtype=bool)
        return ~self.halo
