"""Core DPC machinery: quantities, baseline, decision graph, assignment."""

from repro.core.quantities import (
    TieBreak,
    DensityOrder,
    DPCQuantities,
    DPCResult,
    NO_NEIGHBOR,
)
from repro.core.baseline import naive_quantities, estimate_dc
from repro.core.decision import (
    DecisionGraph,
    select_centers_threshold,
    select_centers_top_k,
    select_centers_auto,
    suggest_outliers,
)
from repro.core.assignment import assign_labels
from repro.core.halo import halo_mask
from repro.core.dpc import DensityPeakClustering

__all__ = [
    "TieBreak",
    "DensityOrder",
    "DPCQuantities",
    "DPCResult",
    "NO_NEIGHBOR",
    "naive_quantities",
    "estimate_dc",
    "DecisionGraph",
    "select_centers_threshold",
    "select_centers_top_k",
    "select_centers_auto",
    "suggest_outliers",
    "assign_labels",
    "halo_mask",
    "DensityPeakClustering",
]
