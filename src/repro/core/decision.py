"""Decision graph and cluster-centre selection (paper Section 2, step 3).

Centres are objects with simultaneously high ρ and anomalously large δ; the
paper (like the original Science'14 algorithm) reads them manually off a
ρ-vs-δ scatter plot.  A library cannot stop for manual input, so three
selection strategies are provided:

* :func:`select_centers_threshold` — the manual procedure encoded as two
  thresholds (exactly what a user does by drawing a box on the plot);
* :func:`select_centers_top_k` — the widely used γ = ρ·δ ranking when the
  number of clusters is known;
* :func:`select_centers_auto` — a deterministic largest-gap heuristic on the
  sorted γ sequence for when it is not.

:class:`DecisionGraph` bundles the plot data so examples can render it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.quantities import DPCQuantities

__all__ = [
    "DecisionGraph",
    "select_centers_threshold",
    "select_centers_top_k",
    "select_centers_auto",
    "suggest_outliers",
]


@dataclass(frozen=True)
class DecisionGraph:
    """The ρ-vs-δ scatter data of one clustering run.

    ``gamma`` is the ρ·δ product used by the ranking strategies; all arrays
    are aligned by object id.
    """

    rho: np.ndarray
    delta: np.ndarray
    gamma: np.ndarray

    @classmethod
    def from_quantities(cls, q: DPCQuantities) -> "DecisionGraph":
        return cls(rho=q.rho.copy(), delta=q.delta.copy(), gamma=q.gamma)

    def __len__(self) -> int:
        return len(self.rho)

    def top_gamma(self, k: int) -> np.ndarray:
        """Ids of the ``k`` largest-γ objects, densest-first for ties."""
        if not (1 <= k <= len(self)):
            raise ValueError(f"k must be in [1, {len(self)}], got {k}")
        ids = np.arange(len(self))
        order = np.lexsort((ids, -self.rho, -self.gamma))
        return order[:k]

    def as_table(self, limit: int = 10) -> str:
        """Plain-text rendering of the top-γ corner of the graph."""
        ids = self.top_gamma(min(limit, len(self)))
        lines = [f"{'id':>8} {'rho':>8} {'delta':>12} {'gamma':>12}"]
        for p in ids:
            lines.append(
                f"{p:>8d} {self.rho[p]:>8d} {self.delta[p]:>12.6g} {self.gamma[p]:>12.6g}"
            )
        return "\n".join(lines)


def select_centers_threshold(
    quantities: DPCQuantities,
    rho_min: float,
    delta_min: float,
) -> np.ndarray:
    """Centres = objects with ``ρ ≥ rho_min`` **and** ``δ ≥ delta_min``.

    This is the encoded form of the manual decision-graph procedure: the user
    draws the lower-left corner of the "anomalously large" region.
    Returns centre ids sorted densest-first.
    """
    mask = (quantities.rho >= rho_min) & (quantities.delta >= delta_min)
    centers = np.flatnonzero(mask)
    if len(centers) == 0:
        raise ValueError(
            f"no object satisfies rho >= {rho_min} and delta >= {delta_min}; "
            "lower the thresholds or use select_centers_top_k"
        )
    return centers[np.argsort(quantities.density_order.rank[centers])]


def select_centers_top_k(quantities: DPCQuantities, k: int) -> np.ndarray:
    """The ``k`` objects with the largest γ = ρ·δ, densest-first."""
    graph = DecisionGraph.from_quantities(quantities)
    centers = graph.top_gamma(k)
    return centers[np.argsort(quantities.density_order.rank[centers])]


def select_centers_auto(
    quantities: DPCQuantities,
    max_centers: Optional[int] = None,
    min_centers: int = 1,
    z_threshold: float = 3.5,
) -> np.ndarray:
    """Deterministic reading of "anomalously large" off the decision graph.

    Centres are objects whose ``log γ`` is a robust outlier above the bulk:
    more than ``z_threshold`` MAD-scaled deviations over the median (the
    standard modified z-score).  This matches how a user reads the graph —
    centres sit far above the cloud regardless of how many there are — and,
    unlike a largest-gap cut, does not collapse when the dataset has many
    similar centres (e.g. Birch's 100 grid clusters).

    Falls back to a largest-ratio gap cut when the γ distribution is too
    degenerate for MAD (more than half the values identical).  Exposed so
    examples, tests and the harness never need interactive input; it is a
    convenience, not a contribution of the paper.
    """
    graph = DecisionGraph.from_quantities(quantities)
    n = len(graph)
    if min_centers < 1:
        raise ValueError(f"min_centers must be >= 1, got {min_centers}")
    cap = n if max_centers is None else min(max_centers, n)
    if cap < min_centers:
        raise ValueError(f"max_centers {max_centers} < min_centers {min_centers}")

    gamma = graph.gamma
    tiny = np.finfo(np.float64).tiny
    log_gamma = np.log(np.maximum(gamma, tiny))
    median = np.median(log_gamma)
    mad = np.median(np.abs(log_gamma - median))
    if mad > 0.0:
        z = 0.6745 * (log_gamma - median) / mad  # modified z-score
        chosen = np.flatnonzero(z > z_threshold)
        chosen = chosen[np.argsort(-gamma[chosen], kind="stable")]
    else:
        # Degenerate bulk: cut the sorted γ sequence at its largest ratio.
        candidates = graph.top_gamma(min(max(2 * min_centers, 32), n))
        g = gamma[candidates]
        ratios = (g[:-1] + tiny) / (g[1:] + tiny)
        cut = int(np.argmax(ratios)) + 1
        chosen = candidates[:cut]

    if len(chosen) < min_centers:
        chosen = graph.top_gamma(min_centers)
    elif len(chosen) > cap:
        chosen = chosen[:cap]
    return chosen[np.argsort(quantities.density_order.rank[chosen])]


def suggest_outliers(
    quantities: DPCQuantities,
    rho_max: float,
    delta_min: float,
) -> np.ndarray:
    """Objects in the top-*left* corner of the decision graph.

    The paper's Figure 2b reads outliers (ids 26–28 in the toy example) as
    objects with *small* ρ but *large* δ: isolated points far from any denser
    region.  Returned sorted by descending δ.
    """
    mask = (quantities.rho <= rho_max) & (quantities.delta >= delta_min)
    outliers = np.flatnonzero(mask)
    return outliers[np.argsort(-quantities.delta[outliers])]
