"""Deterministic, seedable fault injection for chaos testing.

The fault-tolerance layer (sharded parallel execution, the serving
dispatcher, snapshot persistence) is only trustworthy if its failure paths
are *exercised* — and a chaos test that cannot reproduce its failures is
worse than none.  This module gives every failure-handling site in the
codebase a **named fault point**; a test (or an operator drill) activates a
:class:`FaultPlan` that decides, deterministically, which activations of
which points misbehave and how.

Named fault points
------------------
==========================  ====================================================
``parallel.worker``         a worker chunk crashes (``mode="kill"``: the
                            process dies with ``os._exit`` under the process
                            backend, a typed :class:`WorkerCrashError` under
                            threads/serial)
``parallel.slow``           a worker chunk stalls for ``delay_s`` before
                            computing (straggler simulation; the result is
                            still correct)
``parallel.corrupt``        a worker chunk's result payload is bit-flipped
                            *after* its integrity checksum was computed —
                            transport corruption the parent must detect
``parallel.shm_unlink``     the per-run shared-memory pack is unlinked while
                            tasks that need it are still being dispatched
                            (the unlink race)
``coalescer.dispatch``      the serving dispatcher thread raises mid-cycle
``snapshots.publish``       a snapshot publish fails before the swap
``persist.save``            ``save_index`` dies after writing the temp file,
                            before the atomic rename (crash-mid-save)
``persist.payload``         the saved payload is bit-flipped on disk after
                            the rename (bitrot the loader must detect)
``serving.worker.kill``     a serving worker process dies (``os._exit``)
                            mid-batch; the supervisor must fail over the
                            in-flight batch to a warm replica
``serving.worker.hang``     a serving worker wedges (sleeps ``delay_s``)
                            mid-batch; the supervisor's batch deadline must
                            detect it and fail over
``serving.heartbeat.drop``  the supervisor discards a received worker
                            heartbeat — lost-heartbeat noise that must at
                            worst cause a spurious (idempotent) failover
``serving.shm.unlink``      a snapshot's shared-memory image segment is
                            unlinked right after publication; worker
                            attaches fail and the pool must republish
==========================  ====================================================

Determinism
-----------
A :class:`FaultPlan` counts activations per point; a :class:`FaultSpec`
trips on the first ``times`` activations, on an explicit ``at`` set of
occurrence indices, or on a seeded per-point Bernoulli draw
(``probability``).  Two runs with the same plan, seed and workload trip the
same faults at the same occurrences — which is what lets the chaos property
suite (``tests/properties/test_prop_faults.py``) assert *exact* outcomes
under injected failures.

All decisions are made in the **parent** process (fault markers ride into
workers inside task payloads), so occurrence counting never depends on
worker scheduling.

Usage::

    from repro import faults

    plan = faults.FaultPlan(
        [faults.FaultSpec("parallel.worker", mode="kill", times=1)], seed=7
    )
    with faults.inject(plan):
        index.quantities_multi(dcs)   # first worker chunk crashes, run recovers
    assert plan.fired()["parallel.worker"] == 1

With no plan installed every fault point is a near-free no-op (one global
read), so production code paths keep their cost.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_MODES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerCrashError",
    "active_plan",
    "clear",
    "decide",
    "inject",
    "install",
    "trip",
]

#: How a tripped point misbehaves.  ``raise``/``sleep`` are handled by
#: :func:`trip` itself; ``kill``, ``corrupt`` and ``hang`` are returned to
#: the site, which owns the mechanics (process exit, payload bit-flip, a
#: wedged worker sleeping through its batch deadline).
FAULT_MODES = ("raise", "sleep", "kill", "corrupt", "hang")


class InjectedFault(RuntimeError):
    """An error raised by a tripped fault point.

    Deliberately a distinct type: recovery layers treat it as *retryable*
    (like the infrastructure failures it stands in for), and assertions can
    tell an injected failure from a genuine bug.
    """


class WorkerCrashError(InjectedFault):
    """A simulated worker crash under a backend that cannot lose a process
    (threads/serial); the process backend dies for real instead."""


@dataclass(frozen=True)
class FaultSpec:
    """One rule: *which* activations of *one* point misbehave, and *how*.

    Exactly one trigger applies, in precedence order ``probability`` →
    ``at`` → ``times`` (``times=None`` with the others unset means every
    activation trips).
    """

    point: str
    mode: str = "raise"
    times: Optional[int] = 1
    at: Optional[Tuple[int, ...]] = None
    probability: Optional[float] = None
    delay_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {self.mode!r}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.at is not None:
            object.__setattr__(self, "at", tuple(int(i) for i in self.at))


class FaultPlan:
    """A seeded, counting schedule of fault activations.

    Thread-safe: points fire from worker-dispatch loops, the serving
    dispatcher thread and test threads simultaneously; the per-point
    occurrence counters (and the seeded RNG draws) are serialised under one
    lock, so a plan replayed against the same workload makes the same
    decisions.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected a FaultSpec, got {type(spec).__name__}")
            self._specs.setdefault(spec.point, []).append(spec)
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        # One RNG per point, seeded from (seed, point): probability-based
        # specs draw from it in occurrence order, so the trip pattern is a
        # pure function of (seed, workload), never of wall clock or hashing.
        self._rngs: Dict[str, random.Random] = {}

    def points(self) -> Tuple[str, ...]:
        return tuple(sorted(self._specs))

    def decide(self, point: str) -> Optional[FaultSpec]:
        """Count one activation of ``point``; return the spec if it trips."""
        with self._lock:
            occurrence = self._counts.get(point, 0)
            self._counts[point] = occurrence + 1
            for spec in self._specs.get(point, ()):
                if spec.probability is not None:
                    rng = self._rngs.get(point)
                    if rng is None:
                        rng = self._rngs[point] = random.Random(f"{self.seed}:{point}")
                    tripped = rng.random() < spec.probability
                elif spec.at is not None:
                    tripped = occurrence in spec.at
                elif spec.times is None:
                    tripped = True
                else:
                    tripped = occurrence < spec.times
                if tripped:
                    self._fired[point] = self._fired.get(point, 0) + 1
                    return spec
        return None

    def activations(self) -> Dict[str, int]:
        """How many times each point was *reached* (tripped or not)."""
        with self._lock:
            return dict(self._counts)

    def fired(self) -> Dict[str, int]:
        """How many times each point actually tripped."""
        with self._lock:
            return dict(self._fired)


# The active plan is process-global: fault points fire on worker-dispatch
# and serving threads that know nothing about the test that installed it.
_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_LOCK = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Install ``plan`` as the process-wide active plan."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan


def clear() -> None:
    """Deactivate fault injection (every point returns to no-op)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block (always cleared)."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def decide(point: str) -> Optional[FaultSpec]:
    """Consult the active plan about one activation of ``point``.

    Returns the tripped :class:`FaultSpec` (site handles the mechanics) or
    ``None``.  With no plan installed this is a single global read.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.decide(point)


def trip(point: str) -> Optional[FaultSpec]:
    """Fire ``point``: no-op, sleep, or raise, per the active plan.

    ``raise`` specs raise :class:`InjectedFault` here; ``sleep`` specs sleep
    ``delay_s`` and return; ``kill``/``corrupt``/``hang`` specs are returned
    for the call site to enact.
    """
    spec = decide(point)
    if spec is None:
        return None
    if spec.mode == "sleep":
        time.sleep(spec.delay_s)
        return spec
    if spec.mode == "raise":
        raise InjectedFault(
            f"injected fault at {point}" + (f": {spec.message}" if spec.message else "")
        )
    return spec
