"""Top-level CLI: cluster a CSV or built-in dataset from the shell.

Usage::

    python -m repro cluster --dataset s1 --index ch --dc 30000 --n-centers 15
    python -m repro cluster --input points.csv --index rtree --out labels.csv
    python -m repro serve --dataset s1 --index kdtree --port 8030
    python -m repro info

``cluster`` reads 2-column (or wider) numeric CSV, runs the index-accelerated
DPC pipeline, writes one label per row, and prints a summary + the top of the
decision graph.  Omitting ``--dc`` estimates it with the Rodriguez–Laio rule
of thumb; omitting centre options uses the automatic γ-gap reading.

``serve`` publishes one fitted index as a named snapshot and answers
HTTP/JSON queries against it (:mod:`repro.serving`): concurrent requests
coalesce into the batched multi-``dc`` kernels and exact results are cached
per snapshot fingerprint.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.dpc import DensityPeakClustering
from repro.datasets.loaders import available_datasets, load_dataset
from repro.indexes.registry import available_indexes


def _load_points(args) -> np.ndarray:
    if (args.input is None) == (args.dataset is None):
        raise SystemExit("pass exactly one of --input CSV or --dataset NAME")
    if args.input is not None:
        points = np.loadtxt(args.input, delimiter=args.delimiter, ndmin=2)
        if points.ndim != 2 or points.shape[1] < 2:
            raise SystemExit(f"{args.input}: expected numeric rows of >= 2 columns")
        return points
    ds = load_dataset(args.dataset, n=args.n, profile=args.profile, seed=args.seed)
    return ds.points


def _index_params(args) -> dict:
    params = {}
    if args.tau is not None:
        params["tau"] = args.tau
    if args.bin_width is not None:
        params["bin_width"] = args.bin_width
    if args.backend != "serial":
        params["backend"] = args.backend
    if args.n_jobs is not None:
        params["n_jobs"] = args.n_jobs
    if args.chunk_size is not None:
        params["chunk_size"] = args.chunk_size
    return params


def _resolve_index(args) -> "tuple[str, dict]":
    """``(index_name, index_params)`` after the partitioning flags.

    ``--partitions N`` wraps the chosen family in the dataset-sharded
    :class:`~repro.indexes.partition.PartitionedIndex` (results stay
    bit-identical); family-specific knobs move into ``family_params`` while
    the execution knobs stay on the wrapper, whose backend every
    per-partition sub-index shares.
    """
    params = _index_params(args)
    partitions = getattr(args, "partitions", None)
    if not partitions:
        return args.index, params
    family_params = {
        key: params.pop(key) for key in ("tau", "bin_width") if key in params
    }
    params.update(
        family=args.index,
        partitions=partitions,
        halo=args.halo_width,
        scheme=args.partition_scheme,
        family_params=family_params,
    )
    return "partitioned", params


def cmd_cluster(args) -> int:
    points = _load_points(args)
    index_name, index_params = _resolve_index(args)
    model = DensityPeakClustering(
        index=index_name,
        dc=args.dc,
        n_centers=args.n_centers,
        rho_min=args.rho_min,
        delta_min=args.delta_min,
        halo=args.halo,
        index_params=index_params,
        seed=args.seed,
    )
    stats_json = getattr(args, "stats_json", None)
    root_span = None
    if stats_json:
        from repro import obs
        from repro.obs import trace as obs_trace

        obs.enable()
        root_span = obs_trace.begin_span(
            "cli.cluster", index=index_name, n=len(points)
        )
        try:
            with obs_trace.use_span(root_span):
                model.fit(points)
        finally:
            root_span.finish()
    else:
        model.fit(points)

    n = len(points)
    shown = (
        f"{index_name}[{index_params['family']} x {index_params['partitions']}]"
        if index_name == "partitioned" and "family" in index_params
        else index_name
    )
    sizes = np.bincount(model.labels_)
    print(f"n = {n}, dc = {model.dc_:g}, index = {shown}")
    print(f"clusters: {model.n_clusters_}")
    print("sizes:", ", ".join(str(s) for s in sorted(sizes.tolist(), reverse=True)[:12]))
    if model.halo_ is not None:
        print(f"halo objects: {int(model.halo_.sum())}")
    print("\ndecision graph (top):")
    print(model.decision_graph_.as_table(limit=min(8, n)))

    if args.out:
        np.savetxt(args.out, model.labels_, fmt="%d")
        print(f"\nwrote labels to {args.out}")
    if stats_json:
        from repro import obs
        from repro.obs import trace as obs_trace
        from repro.obs.export import dump_stats_json
        from repro.obs.provenance import provenance_block

        tree = obs_trace.get_trace(root_span.trace_id)
        dump_stats_json(
            stats_json,
            trace_tree=tree,
            extra={
                "provenance": provenance_block(),
                "run": {
                    "index": index_name,
                    "n": n,
                    "dc": float(model.dc_),
                    "n_clusters": int(model.n_clusters_),
                },
            },
        )
        obs.disable()
        print(f"\nwrote metrics + trace to {stats_json}")
    return 0


def build_server(args):
    """Construct the (service, server) pair for ``serve`` (test seam)."""
    from repro.serving import ClusteringService, make_server

    service = ClusteringService(
        dispatch=args.dispatch,
        cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        # getattr: pre-robustness Namespace seams omit the fault-tolerance
        # knobs; absent means the old unbounded/no-deadline behaviour.
        max_queue=getattr(args, "max_queue", None),
        default_timeout_s=getattr(args, "timeout_s", None),
        # Replicated serving tier: N supervised shared-memory workers
        # (0 = classic in-process dispatch).
        workers=getattr(args, "workers", 0) or 0,
        heartbeat_s=getattr(args, "heartbeat_s", 0.25),
    )
    if args.load is not None:
        if args.input is not None or args.dataset is not None:
            raise SystemExit("--load replaces --input/--dataset; pass only one")
        snapshot = service.load_snapshot(args.snapshot, args.load)
        # Execution config is machine state, never serialised (persist.py
        # drops it) — re-apply the CLI flags to the restored index so
        # --backend/--n-jobs/--chunk-size aren't silently ignored.
        snapshot.index.set_execution(
            backend=args.backend if args.backend != "serial" else None,
            n_jobs=args.n_jobs,
            chunk_size=args.chunk_size,
        )
    else:
        index_name, index_params = _resolve_index(args)
        snapshot = service.fit_snapshot(
            args.snapshot, _load_points(args), index=index_name, **index_params
        )
    if getattr(args, "edge", "threads") == "asyncio":
        from repro.serving.edge import make_edge_server

        server = make_edge_server(
            service,
            host=args.host,
            port=args.port,
            max_inflight=getattr(args, "max_inflight", None),
            default_timeout_s=getattr(args, "timeout_s", None),
            observability=not getattr(args, "no_observability", False),
        )
    else:
        server = make_server(
            service,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            observability=not getattr(args, "no_observability", False),
        )
    return service, server, snapshot


def cmd_serve(args) -> int:
    import signal
    import threading

    service, server, snapshot = build_server(args)
    host, port = server.server_address
    print(f"snapshot {snapshot.name!r}: index={snapshot.index.name} n={snapshot.n} "
          f"fingerprint={snapshot.fingerprint[:12]}…")
    workers = getattr(args, "workers", 0) or 0
    print(f"serving on http://{host}:{port}  (dispatch={service.dispatch}, "
          f"edge={getattr(args, 'edge', 'threads')}, workers={workers})")
    print(f"  curl http://{host}:{port}/healthz")
    print(f"  curl -X POST http://{host}:{port}/v1/query -d "
          f"'{{\"snapshot\": \"{snapshot.name}\", \"op\": \"cluster\", \"dc\": 0.5}}'")

    # SIGTERM/SIGINT trigger a graceful drain: stop accepting (clients fail
    # over), flush in-flight requests under --drain-timeout-s, exit 0 when
    # the flush completed cleanly, 1 when it was forced.
    stop = threading.Event()
    received = {}

    def _on_signal(signum, frame):  # noqa: ARG001 - signal contract
        received["signum"] = signum
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    accept_thread = None
    if hasattr(server, "serve_forever"):  # threading front-end
        accept_thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-accept", daemon=True
        )
        accept_thread.start()
    # The asyncio edge is already serving on its own loop thread.

    stop.wait()
    signum = received.get("signum")
    name = signal.Signals(signum).name if signum is not None else "stop"
    drain_timeout = getattr(args, "drain_timeout_s", 10.0)
    print(f"{name}: draining (timeout {drain_timeout:g}s)…")
    clean = server.drain(timeout_s=drain_timeout)
    clean = service.drain(timeout_s=drain_timeout) and clean
    server.server_close()
    if accept_thread is not None:
        accept_thread.join(timeout=5.0)
    print(f"drain {'clean' if clean else 'forced'}; exiting {0 if clean else 1}")
    return 0 if clean else 1


def cmd_info(_args) -> int:
    print("indexes:", ", ".join(available_indexes()))
    print("datasets:", ", ".join(available_datasets()))
    print("experiments: python -m repro.harness --help")
    print("serving: python -m repro serve --help")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Index-accelerated Density Peak Clustering.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cluster = sub.add_parser("cluster", help="cluster a CSV file or a built-in dataset")
    cluster.add_argument("--input", help="CSV of numeric rows (one point per line)")
    cluster.add_argument("--delimiter", default=",")
    cluster.add_argument("--dataset", choices=sorted(available_datasets()))
    cluster.add_argument("--n", type=int, default=None, help="dataset size override")
    cluster.add_argument("--profile", default="bench", choices=("test", "bench", "large"))
    cluster.add_argument("--index", default="ch", choices=sorted(available_indexes()))
    cluster.add_argument("--dc", type=float, default=None, help="cut-off distance (default: estimated)")
    cluster.add_argument("--n-centers", type=int, default=None)
    cluster.add_argument("--rho-min", type=float, default=None)
    cluster.add_argument("--delta-min", type=float, default=None)
    cluster.add_argument("--halo", action="store_true", help="flag border/noise objects")
    cluster.add_argument("--tau", type=float, default=None, help="RN-List threshold (rn-* indexes)")
    cluster.add_argument("--bin-width", type=float, default=None, help="CH bin width")
    cluster.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "threads", "process"),
        help="query execution backend (results are bit-identical)",
    )
    cluster.add_argument(
        "--n-jobs", type=int, default=None,
        help="worker count for threads/process backends (default: all cores)",
    )
    cluster.add_argument(
        "--chunk-size", type=int, default=None,
        help="queries per shard task (default: ~4 chunks per worker)",
    )
    cluster.add_argument(
        "--partitions", type=int, default=None,
        help="shard the dataset into this many tiles (partitioned execution; "
        "results stay bit-identical to the unpartitioned index)",
    )
    cluster.add_argument(
        "--halo-width", type=float, default=None,
        help="initial halo width in metric units (default: auto-grow to dc)",
    )
    cluster.add_argument(
        "--partition-scheme", default="morton", choices=("morton", "grid"),
        help="tiling curve for --partitions (locality only, never results)",
    )
    cluster.add_argument("--out", default=None, help="write labels (one per row) here")
    cluster.add_argument(
        "--stats-json", default=None, metavar="PATH",
        help="enable observability for the run and write the metrics "
        "snapshot + phase-timing trace (repro.obs) as JSON here",
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.set_defaults(func=cmd_cluster)

    serve = sub.add_parser(
        "serve", help="serve exact DPC queries over HTTP (repro.serving)"
    )
    serve.add_argument("--input", help="CSV of numeric rows (one point per line)")
    serve.add_argument("--delimiter", default=",")
    serve.add_argument("--dataset", choices=sorted(available_datasets()))
    serve.add_argument("--n", type=int, default=None, help="dataset size override")
    serve.add_argument("--profile", default="bench", choices=("test", "bench", "large"))
    serve.add_argument(
        "--load", default=None,
        help="publish a persisted index (.npz from repro.indexes.persist) "
        "instead of fitting --input/--dataset",
    )
    serve.add_argument("--index", default="ch", choices=sorted(available_indexes()))
    serve.add_argument("--snapshot", default="default", help="snapshot name to publish")
    serve.add_argument("--tau", type=float, default=None, help="RN-List threshold (rn-* indexes)")
    serve.add_argument("--bin-width", type=float, default=None, help="CH bin width")
    serve.add_argument("--backend", default="serial", choices=("serial", "threads", "process"))
    serve.add_argument("--n-jobs", type=int, default=None)
    serve.add_argument("--chunk-size", type=int, default=None)
    serve.add_argument(
        "--partitions", type=int, default=None,
        help="shard the dataset into this many tiles (partitioned execution)",
    )
    serve.add_argument(
        "--halo-width", type=float, default=None,
        help="initial halo width in metric units (default: auto-grow to dc)",
    )
    serve.add_argument(
        "--partition-scheme", default="morton", choices=("morton", "grid"),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8030, help="0 picks a free port")
    serve.add_argument(
        "--dispatch", default="coalesce", choices=("coalesce", "serial"),
        help="batch concurrent requests through the multi-dc kernels, or "
        "run one engine call per request",
    )
    serve.add_argument("--max-batch", type=int, default=64, help="requests per dispatch cycle")
    serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="how long a dispatch cycle waits for more requests to coalesce",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None,
        help="admission bound: shed requests (503 + Retry-After) once this "
        "many are queued undispatched (default: unbounded)",
    )
    serve.add_argument(
        "--timeout-s", type=float, default=None,
        help="default per-request deadline; expired requests fail fast with "
        "503 instead of riding their batch (default: none)",
    )
    serve.add_argument("--cache-entries", type=int, default=256, help="result-cache capacity (0 disables)")
    serve.add_argument("--cache-ttl", type=float, default=None, help="result-cache TTL seconds (default: none)")
    serve.add_argument(
        "--workers", type=int, default=0,
        help="supervised serving workers sharing one shared-memory snapshot "
        "image (0 = in-process dispatch only; dead workers fail over warm)",
    )
    serve.add_argument(
        "--heartbeat-s", type=float, default=0.25,
        help="worker heartbeat period; a worker silent for 5 heartbeats is "
        "declared dead and its in-flight batch re-dispatched",
    )
    serve.add_argument(
        "--drain-timeout-s", type=float, default=10.0,
        help="graceful-drain budget on SIGTERM/SIGINT: in-flight requests "
        "get this long to flush before a forced exit (exit code 1)",
    )
    serve.add_argument(
        "--edge", default="threads", choices=("threads", "asyncio"),
        help="front-end flavour: thread-per-connection (default) or the "
        "asyncio edge (one event loop, admission control at the door)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="asyncio edge only: cap on concurrently served queries; excess "
        "is shed with 503 + Retry-After before touching the dispatch queue",
    )
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    serve.add_argument(
        "--no-observability", action="store_true",
        help="keep repro.obs instrumentation on its no-op path "
        "(/metrics and /trace will serve empty registries)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=cmd_serve)

    info = sub.add_parser("info", help="list available indexes and datasets")
    info.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
