"""Exposition: Prometheus text rendering, parsing, and JSON stats dumps.

:func:`render_prometheus` turns the metrics registry into the Prometheus
text exposition format (``# HELP`` / ``# TYPE`` comments, cumulative
``_bucket{le=...}`` / ``_sum`` / ``_count`` series for histograms) served
by ``GET /metrics``.  :func:`parse_prometheus` is the inverse used by the
test suite and the CI ``obs-smoke`` job to assert the endpoint stays
well-formed.  :func:`dump_stats_json` backs
``python -m repro cluster --stats-json PATH``.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as metrics_mod

__all__ = [
    "dump_stats_json",
    "metrics_snapshot",
    "parse_prometheus",
    "phase_totals",
    "render_prometheus",
]

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, labels[k]) for k in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: Optional[metrics_mod.MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    registry = registry or metrics_mod.REGISTRY
    lines: List[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "histogram":
            bounds = family["bucket_bounds"]
            for sample in family["samples"]:
                labels = sample["labels"]
                cumulative = 0
                for bound, count in zip(bounds, sample["buckets"]):
                    cumulative += count
                    le = _labels_text(labels, ("le", _fmt(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += sample["buckets"][-1]
                lines.append(f'{name}_bucket{_labels_text(labels, ("le", "+Inf"))} {cumulative}')
                lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(sample['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} {sample['count']}")
        else:
            for sample in family["samples"]:
                lines.append(f"{name}{_labels_text(sample['labels'])} {_fmt(sample['value'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse exposition text into ``{series_name: [(labels, value), ...]}``.

    Histogram series appear under their expanded names (``*_bucket``,
    ``*_sum``, ``*_count``).  Raises :class:`ValueError` on any malformed
    non-comment line, which is what makes it useful as a format check.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(raw):
                labels[pair.group(1)] = pair.group(2).replace('\\"', '"').replace("\\\\", "\\")
                consumed = pair.end()
            if raw[consumed:].strip(", "):
                raise ValueError(f"malformed labels on line {lineno}: {raw!r}")
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def metrics_snapshot(registry: Optional[metrics_mod.MetricsRegistry] = None) -> dict:
    """A JSON-serialisable snapshot of every instrument family."""
    registry = registry or metrics_mod.REGISTRY
    return {family["name"]: family for family in registry.collect()}


def phase_totals(trace_tree: dict) -> Dict[str, float]:
    """Total milliseconds per span name across one trace tree."""
    totals: Dict[str, float] = {}

    def walk(node: dict) -> None:
        if not node:
            return
        totals[node["name"]] = totals.get(node["name"], 0.0) + node["duration_ns"] / 1e6
        for child in node.get("children", ()):
            walk(child)

    walk(trace_tree)
    return totals


def dump_stats_json(
    path: str,
    trace_tree: Optional[dict] = None,
    extra: Optional[dict] = None,
    registry: Optional[metrics_mod.MetricsRegistry] = None,
) -> dict:
    """Write ``{metrics, trace, ...extra}`` to ``path``; returns the payload."""
    payload = {
        "schema_version": 1,
        "metrics": metrics_snapshot(registry),
    }
    if trace_tree is not None:
        payload["trace"] = trace_tree
        payload["phase_ms"] = phase_totals(trace_tree)
    if extra:
        payload.update(extra)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
