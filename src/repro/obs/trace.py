"""Lightweight request tracing: contextvars-propagated span trees.

A trace is a tree of :class:`Span` objects sharing one ``trace_id``.  The
root opens at HTTP ingress / ``ClusteringService.submit()`` (or at the CLI
entry point) and children open around each phase the request flows through
— coalescer dispatch, ``quantities_multi``, partition local/gather passes,
parallel task waves — so one trace shows the full phase breakdown of one
request.  Timing uses ``time.perf_counter_ns`` (monotonic), so durations
are non-negative by construction.

Propagation is via a :data:`contextvars.ContextVar`, which flows through
plain calls and ``contextvars``-aware executors.  The serving dispatcher
runs on its *own* thread, so the coalescer carries the request's root span
explicitly (``ServeRequest.span``) and re-establishes it there with
:func:`use_span`.

Finished root spans land in a small ring buffer keyed by trace id
(:func:`get_trace`, served by ``GET /trace/<id>``).  With capture disabled
every entry point returns the shared :data:`NOOP_SPAN` and touches nothing.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter_ns
from typing import Deque, Iterator, List, Optional

from repro.obs import runtime

__all__ = [
    "NOOP_SPAN",
    "Span",
    "begin_span",
    "current_span",
    "current_trace_id",
    "get_trace",
    "recent_trace_ids",
    "reset",
    "span",
    "use_span",
]

#: How many finished traces the ring buffer retains.
TRACE_BUFFER_CAPACITY = 256

_UNSET = object()


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node of a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_ns", "end_ns", "attrs", "children")

    def __init__(self, name: str, trace_id: str, parent_id: Optional[str], attrs: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_ns = perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.attrs = attrs
        self.children: List[Span] = []

    def set(self, key: str, value: object) -> None:
        """Attach one attribute (JSON-serialisable values only)."""
        self.attrs[key] = value

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else perf_counter_ns()
        return end - self.start_ns

    def finish(self) -> None:
        """Close the span (idempotent); finished roots enter the ring buffer."""
        if self.end_ns is not None:
            return
        self.end_ns = perf_counter_ns()
        if self.parent_id is None:
            _buffer_put(self)

    def to_dict(self, root_start_ns: Optional[int] = None) -> dict:
        """JSON tree rooted here; offsets are relative to the trace root."""
        base = self.start_ns if root_start_ns is None else root_start_ns
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "offset_ns": self.start_ns - base,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [child.to_dict(base) for child in list(self.children)],
        }


class _NoopSpan:
    """Shared inert span returned by every entry point while capture is off."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = "noop"
    attrs: dict = {}
    children = ()
    duration_ns = 0

    def set(self, key: str, value: object) -> None:
        pass

    def finish(self) -> None:
        pass

    def to_dict(self, root_start_ns: Optional[int] = None) -> dict:
        return {}


NOOP_SPAN = _NoopSpan()

_CURRENT: ContextVar[Optional[Span]] = ContextVar("repro_obs_current_span", default=None)

_BUFFER_LOCK = threading.Lock()
_BUFFER: Deque[Span] = deque(maxlen=TRACE_BUFFER_CAPACITY)


def _buffer_put(root: Span) -> None:
    with _BUFFER_LOCK:
        _BUFFER.append(root)


def get_trace(trace_id: str) -> Optional[dict]:
    """The JSON span tree of a finished trace, or ``None`` if unknown."""
    with _BUFFER_LOCK:
        for root in reversed(_BUFFER):
            if root.trace_id == trace_id:
                return root.to_dict()
    return None


def recent_trace_ids(limit: int = 20) -> List[str]:
    """Most-recent-first ids of finished traces in the ring buffer."""
    with _BUFFER_LOCK:
        roots = list(_BUFFER)
    return [root.trace_id for root in reversed(roots)][: max(0, int(limit))]


def reset() -> None:
    """Clear the ring buffer (test isolation)."""
    with _BUFFER_LOCK:
        _BUFFER.clear()


def current_span() -> Optional[Span]:
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    sp = _CURRENT.get()
    return sp.trace_id if sp is not None else None


def begin_span(name: str, parent: object = _UNSET, **attrs: object):
    """Open a span without entering it (caller owns ``finish()``).

    ``parent`` defaults to the context's current span; pass an explicit
    span to stitch across threads, or ``None`` to force a new trace root.
    Returns :data:`NOOP_SPAN` when capture is off.
    """
    if not runtime._ENABLED:
        return NOOP_SPAN
    if parent is _UNSET:
        parent = _CURRENT.get()
    if parent is None or parent is NOOP_SPAN:
        return Span(name, _new_id(), None, dict(attrs))
    sp = Span(name, parent.trace_id, parent.span_id, dict(attrs))
    parent.children.append(sp)
    return sp


@contextmanager
def span(name: str, parent: object = _UNSET, **attrs: object) -> Iterator[object]:
    """Open a span for the block and make it the context's current span."""
    sp = begin_span(name, parent, **attrs)
    if sp is NOOP_SPAN:
        yield sp
        return
    token = _CURRENT.set(sp)
    try:
        yield sp
    except BaseException as exc:
        sp.set("error", type(exc).__name__)
        raise
    finally:
        _CURRENT.reset(token)
        sp.finish()


@contextmanager
def use_span(sp: object) -> Iterator[None]:
    """Re-establish ``sp`` as the current span (cross-thread handoff)."""
    if sp is None or sp is NOOP_SPAN or not runtime._ENABLED:
        yield
        return
    token = _CURRENT.set(sp)
    try:
        yield
    finally:
        _CURRENT.reset(token)
