"""Shared provenance stamping for ``BENCH_*.json`` trajectory records.

Every benchmark script used to hand-roll its own ``append_record`` helper
and its own subset of environment fields (``python``, ``cpu_count``,
``usable_cpus``...), so records from different scripts — and different PRs
— were not comparable.  This module is the single implementation: records
appended through :func:`append_record` are stamped with one common
``provenance`` block so the future trend-report runner can group, filter
and diff records across the whole trajectory.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Optional

__all__ = ["SCHEMA_VERSION", "append_record", "git_commit", "provenance_block", "usable_cpus"]

#: Version of the provenance block layout (bump on breaking field changes).
SCHEMA_VERSION = 1


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def git_commit() -> Optional[str]:
    """The repo HEAD commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def provenance_block() -> dict:
    """The common environment/identity block stamped onto every record."""
    import numpy

    return {
        "schema_version": SCHEMA_VERSION,
        "git_commit": git_commit(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
    }


def append_record(record: dict, path: str) -> None:
    """Append ``record`` (provenance-stamped) to the JSON list at ``path``.

    The file is created if missing; a legacy single-record file is wrapped
    into a list.  An existing ``provenance`` key is left untouched.
    """
    record.setdefault("provenance", provenance_block())
    records = []
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
        records = existing if isinstance(existing, list) else [existing]
    records.append(record)
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2, sort_keys=True)
        fh.write("\n")
