"""Process-global metrics registry: counters, gauges, fixed-bucket histograms.

Dependency-free, thread-safe, and near-free when observability is off:
the accessor functions (:func:`counter`, :func:`gauge`, :func:`histogram`)
return the shared no-op singletons (:data:`NOOP_COUNTER` et al.) whenever
:mod:`repro.obs.runtime` says capture is disabled, and every write method on
a real instrument re-checks the same flag so handles cached while enabled
stop recording the moment capture is turned off.

Label sets are bounded: each instrument family keeps at most
:data:`MAX_LABEL_SETS` distinct children; further label combinations fold
into one shared overflow child (label values ``"__overflow__"``), so a
cardinality bug in a caller cannot grow the registry without bound.

Usage::

    from repro.obs import metrics

    metrics.counter(
        "repro_parallel_retries_total", "Chunk retries", ("kind",)
    ).labels("process").inc()

Snapshots come from :meth:`MetricsRegistry.collect` (consumed by
:mod:`repro.obs.export` for the Prometheus text endpoint and
``--stats-json``).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import runtime

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]

#: Upper bounds (seconds) for latency histograms; ``+Inf`` is implicit.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Per-family cap on distinct label-value children.
MAX_LABEL_SETS = 64

#: Label values of the shared overflow child.
OVERFLOW_LABEL = "__overflow__"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _Noop:
    """Shared do-nothing instrument; one singleton per kind.

    ``labels`` returns ``self`` so call sites never branch on the flag.
    """

    __slots__ = ()

    def labels(self, *values: object) -> "_Noop":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP_COUNTER = _Noop()
NOOP_GAUGE = _Noop()
NOOP_HISTOGRAM = _Noop()

_NOOPS = {"counter": NOOP_COUNTER, "gauge": NOOP_GAUGE, "histogram": NOOP_HISTOGRAM}


class _Child:
    """One labelled time series of a scalar family (counter or gauge)."""

    __slots__ = ("family", "labelvalues", "value")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        self.family = family
        self.labelvalues = labelvalues
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not runtime._ENABLED:
            return
        fam = self.family
        with fam._lock:
            self.value += amount
            fam._writes += 1

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        if not runtime._ENABLED:
            return
        fam = self.family
        with fam._lock:
            self.value = float(value)
            fam._writes += 1

    def labels(self, *values: object) -> "_Child":
        return self.family.labels(*values)


class _HistogramChild:
    """One labelled series of a histogram family (fixed cumulative buckets)."""

    __slots__ = ("family", "labelvalues", "counts", "sum", "count")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        self.family = family
        self.labelvalues = labelvalues
        self.counts = [0] * (len(family.buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not runtime._ENABLED:
            return
        fam = self.family
        idx = bisect_left(fam.buckets, value)
        with fam._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            fam._writes += 1

    def labels(self, *values: object) -> "_HistogramChild":
        return self.family.labels(*values)


class _Family:
    """One named instrument: a set of children keyed by label values."""

    __slots__ = (
        "kind", "name", "help", "labelnames", "buckets",
        "_lock", "_children", "_writes", "_default",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets or ()
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        self._writes = 0
        # Label-less families act as their own single child.
        self._default = self.labels() if not labelnames else None

    def labels(self, *values: object):
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label values, got {len(key)}"
            )
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_SETS:
                    key = (OVERFLOW_LABEL,) * len(self.labelnames)
                    child = self._children.get(key)
                    if child is not None:
                        return child
                cls = _HistogramChild if self.kind == "histogram" else _Child
                child = self._children[key] = cls(self, key)
        return child

    # Scalar writes on a label-less family delegate to the default child.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    def snapshot(self) -> dict:
        """A point-in-time copy of every child, safe to serialise."""
        with self._lock:
            samples: List[dict] = []
            for key in sorted(self._children):
                child = self._children[key]
                labels = dict(zip(self.labelnames, key))
                if self.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "labelnames": list(self.labelnames),
                "bucket_bounds": list(self.buckets),
                "samples": samples,
                "writes": self._writes,
            }


class MetricsRegistry:
    """Thread-safe name → family map; the process default is :data:`REGISTRY`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def register(
        self,
        kind: str,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as {family.kind}, not {kind}"
                )
            return family
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(str(l) for l in labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        if kind == "histogram":
            bounds = tuple(float(b) for b in (buckets or DEFAULT_SECONDS_BUCKETS))
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        else:
            bounds = None
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(kind, name, help, labelnames, bounds)
            elif family.kind != kind:
                raise ValueError(
                    f"instrument {name!r} already registered as {family.kind}, not {kind}"
                )
        return family

    def collect(self) -> List[dict]:
        """Snapshot every family, sorted by name."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        return [family.snapshot() for family in families]

    def total_writes(self) -> int:
        """How many instrument writes have been recorded (overhead accounting)."""
        with self._lock:
            families = list(self._families.values())
        total = 0
        for family in families:
            with family._lock:
                total += family._writes
        return total

    def reset(self) -> None:
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "", labelnames: Sequence[str] = ()):
    """Get or create a counter; the shared no-op when capture is off."""
    if not runtime._ENABLED:
        return NOOP_COUNTER
    return REGISTRY.register("counter", name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()):
    """Get or create a gauge; the shared no-op when capture is off."""
    if not runtime._ENABLED:
        return NOOP_GAUGE
    return REGISTRY.register("gauge", name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Optional[Sequence[float]] = None,
):
    """Get or create a fixed-bucket histogram; the shared no-op when off."""
    if not runtime._ENABLED:
        return NOOP_HISTOGRAM
    return REGISTRY.register("histogram", name, help, labelnames, buckets)
