"""Unified observability: metrics registry, request tracing, exposition.

Three pillars, one switch:

- :mod:`repro.obs.metrics` — process-global counters / gauges / fixed-bucket
  histograms with bounded label sets;
- :mod:`repro.obs.trace` — contextvars-propagated span trees with a ring
  buffer of recent traces;
- :mod:`repro.obs.export` — Prometheus text exposition, the trace JSON
  shape, and ``--stats-json`` dumps.

Capture is **off by default** (library and benchmark use pay a single
global read per instrumentation site); the HTTP server turns it on at
startup.  :mod:`repro.obs.provenance` stamps ``BENCH_*.json`` records with
a common environment block through the shared ``append_record``.
"""

from repro.obs import export, metrics, provenance, trace  # noqa: F401
from repro.obs.runtime import disable, enable, enabled, enabled_scope

__all__ = [
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "export",
    "metrics",
    "provenance",
    "trace",
]
