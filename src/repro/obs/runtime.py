"""Process-global observability switch.

Instrumentation follows the :mod:`repro.faults` trick: with observability
disabled (the default for library and benchmark use) every instrument
accessor returns a shared no-op singleton and every write method bails on a
single module-attribute read, so the hot paths keep their cost.  The HTTP
server enables observability at startup; tests flip it with
:func:`enabled_scope`.

The flag deliberately lives in its own tiny module so that
:mod:`repro.obs.metrics` and :mod:`repro.obs.trace` can share it without an
import cycle through ``repro.obs``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["disable", "enable", "enabled", "enabled_scope"]

_ENABLED = False
_LOCK = threading.Lock()


def enabled() -> bool:
    """Is instrumentation capture currently on? (One global read.)"""
    return _ENABLED


def enable() -> None:
    """Turn instrumentation capture on process-wide."""
    global _ENABLED
    with _LOCK:
        _ENABLED = True


def disable() -> None:
    """Turn instrumentation capture off process-wide (the default)."""
    global _ENABLED
    with _LOCK:
        _ENABLED = False


@contextmanager
def enabled_scope(value: bool = True) -> Iterator[None]:
    """Temporarily force the capture flag to ``value`` (always restored)."""
    global _ENABLED
    with _LOCK:
        previous = _ENABLED
        _ENABLED = bool(value)
    try:
        yield
    finally:
        with _LOCK:
            _ENABLED = previous
